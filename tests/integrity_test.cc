// Malicious-server conformance suite.
//
// The fail-closed contract: against a server that LIES -- mutated reads
// served with Status::Ok, acknowledged-but-dropped writes, replayed stale
// blocks -- every algorithm either completes with output identical to a
// tamper-free run, or surfaces StatusCode::kIntegrity cleanly through
// Result<T>.  Never silent corruption, never a crash, and never a retry:
// RetryPolicy absorbs kIo (an honest fault may pass on re-ask), but a
// failed MAC is proof of tampering, so kIntegrity bypasses the retry loop
// by construction.  Tampering is deterministic and seed-reproducible, so
// every trial replays exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "api/session.h"
#include "extmem/backend.h"
#include "extmem/device.h"
#include "extmem/encryption.h"
#include "extmem/io_engine.h"
#include "test_util.h"
#include "util/status.h"

namespace oem {
namespace {

TamperProfile tamper(std::uint64_t seed, double rate) {
  TamperProfile p;
  p.seed = seed;
  p.tamper_rate = rate;
  return p;
}

/// Rollback-only adversary: writes are ACKed and dropped, reads untouched.
TamperProfile rollback_only(std::uint64_t seed, double rate) {
  TamperProfile p = tamper(seed, rate);
  p.corrupt = p.bit_flip = p.swap = false;
  return p;
}

/// Read-mutation-only adversary: every write lands, reads are garbled.
TamperProfile corrupt_only(std::uint64_t seed, double rate) {
  TamperProfile p = tamper(seed, rate);
  p.bit_flip = p.swap = p.rollback = false;
  return p;
}

// ---------------------------------------------------------------------------
// Encryptor freshness: the nonce stream must never repeat (a reused nonce
// re-keys two sealings identically, which both leaks plaintext XORs and
// lets a replayed block carry a valid-looking tag).

TEST(Encryptor, FreshNoncesNeverRepeatAndNeverZero) {
  Encryptor enc(0x5eedULL, /*nonce_seed=*/42);
  std::unordered_set<Word> seen;
  for (int i = 0; i < 50000; ++i) {
    const Word n = enc.fresh_nonce();
    ASSERT_NE(n, 0u) << "0 is the never-written sentinel";
    ASSERT_TRUE(seen.insert(n).second) << "nonce repeated at draw " << i;
  }
}

TEST(Encryptor, NonceStreamIsSeedDeterministic) {
  Encryptor a(0x5eedULL, 7), b(0x5eedULL, 7), c(0x5eedULL, 8);
  std::vector<Word> sa, sb, sc;
  for (int i = 0; i < 64; ++i) {
    sa.push_back(a.fresh_nonce());
    sb.push_back(b.fresh_nonce());
    sc.push_back(c.fresh_nonce());
  }
  EXPECT_EQ(sa, sb) << "same (key, seed) must replay the same stream";
  EXPECT_NE(sa, sc);
}

TEST(Encryptor, MacBindsIndexNonceVersionAndCiphertext) {
  Encryptor enc(0x5eedULL, 1);
  std::vector<Word> ct = {11, 22, 33, 44};
  const Word m = enc.mac(/*block=*/3, /*nonce=*/9, /*version=*/2, ct);
  EXPECT_NE(m, enc.mac(4, 9, 2, ct)) << "tag must bind the block index";
  EXPECT_NE(m, enc.mac(3, 10, 2, ct)) << "tag must bind the nonce";
  EXPECT_NE(m, enc.mac(3, 9, 3, ct)) << "tag must bind the version";
  std::vector<Word> other = ct;
  other[2] ^= 1;
  EXPECT_NE(m, enc.mac(3, 9, 2, other)) << "tag must bind the ciphertext";
  EXPECT_EQ(m, Encryptor(0x5eedULL, 99).mac(3, 9, 2, ct))
      << "the tag is a pure function of (key, index, nonce, version, ct)";
}

// ---------------------------------------------------------------------------
// TamperingBackend unit semantics.

TEST(TamperingBackend, DeterministicAcrossRuns) {
  constexpr std::size_t kBw = 4;
  std::vector<std::vector<Word>> runs;
  for (int run = 0; run < 2; ++run) {
    auto backend = tampering_backend(mem_backend(), corrupt_only(9, 0.5))(kBw);
    ASSERT_TRUE(backend->resize(8).ok());
    for (std::uint64_t b = 0; b < 8; ++b)
      ASSERT_TRUE(backend->write(b, std::vector<Word>(kBw, b + 1)).ok());
    std::vector<Word> out(8 * kBw);
    const std::vector<std::uint64_t> ids = {0, 1, 2, 3, 4, 5, 6, 7};
    ASSERT_TRUE(backend->read_many(ids, out).ok());
    runs.push_back(std::move(out));
  }
  EXPECT_EQ(runs[0], runs[1]) << "same seed, same call sequence, same lies";

  auto other = tampering_backend(mem_backend(), corrupt_only(10, 0.5))(kBw);
  ASSERT_TRUE(other->resize(8).ok());
  for (std::uint64_t b = 0; b < 8; ++b)
    ASSERT_TRUE(other->write(b, std::vector<Word>(kBw, b + 1)).ok());
  std::vector<Word> out(8 * kBw);
  const std::vector<std::uint64_t> all = {0, 1, 2, 3, 4, 5, 6, 7};
  ASSERT_TRUE(other->read_many(all, out).ok());
  EXPECT_NE(out, runs[0]) << "a different seed mounts different attacks";
}

TEST(TamperingBackend, RollbackAcksTheWriteButDropsIt) {
  constexpr std::size_t kBw = 3;
  auto backend = tampering_backend(mem_backend(), rollback_only(5, 1.0))(kBw);
  auto* tb = dynamic_cast<TamperingBackend*>(backend.get());
  ASSERT_NE(tb, nullptr);
  ASSERT_TRUE(backend->resize(4).ok());
  EXPECT_TRUE(backend->write(2, std::vector<Word>(kBw, 77)).ok())
      << "the malicious server ACKs the write it is about to drop";
  EXPECT_EQ(tb->tampered(), 1u);
  std::vector<Word> raw(kBw, 1);
  ASSERT_TRUE(tb->inner().read(2, raw).ok());
  EXPECT_EQ(raw, std::vector<Word>(kBw, 0)) << "the dropped write landed";
  // Reads are untouched by a rollback-only profile: the stale bytes come
  // back with Status::Ok -- indistinguishable from honest storage without
  // a client-side freshness check.
  std::vector<Word> out(kBw, 1);
  ASSERT_TRUE(backend->read(2, out).ok());
  EXPECT_EQ(out, std::vector<Word>(kBw, 0));
}

TEST(TamperingBackend, SplitPhaseDropsAtBeginAndMutatesAtCompletion) {
  constexpr std::size_t kBw = 4;
  auto backend = tampering_backend(mem_backend(), rollback_only(6, 1.0))(kBw);
  auto* tb = dynamic_cast<TamperingBackend*>(backend.get());
  ASSERT_NE(tb, nullptr);
  ASSERT_TRUE(backend->resize(4).ok());
  // A dropped begun write: ACKed at begin, no frame below, no-op completion.
  const std::vector<std::uint64_t> wids = {0, 1};
  ASSERT_TRUE(backend->begin_write_many(wids, std::vector<Word>(2 * kBw, 9)).ok());
  ASSERT_TRUE(backend->complete_oldest().ok());
  std::vector<Word> raw(kBw, 1);
  ASSERT_TRUE(tb->inner().read(0, raw).ok());
  EXPECT_EQ(raw, std::vector<Word>(kBw, 0));

  // Begun read mutations land at completion time, when the bytes exist.
  auto reader = tampering_backend(mem_backend(), corrupt_only(6, 1.0))(kBw);
  auto* rb = dynamic_cast<TamperingBackend*>(reader.get());
  ASSERT_TRUE(reader->resize(4).ok());
  ASSERT_TRUE(reader->write(0, std::vector<Word>(kBw, 42)).ok());
  std::vector<Word> out(kBw, 0);
  const std::vector<std::uint64_t> rids = {0};
  ASSERT_TRUE(reader->begin_read_many(rids, out).ok());
  const std::uint64_t fired_before = rb->tampered();
  ASSERT_TRUE(reader->complete_oldest().ok());
  EXPECT_GT(rb->tampered(), fired_before);
  EXPECT_NE(out, std::vector<Word>(kBw, 42)) << "rate-1.0 read served honestly";
}

// ---------------------------------------------------------------------------
// EncryptedBackend in authenticated mode: every attack class becomes a clean
// kIntegrity at the read that observes it.

constexpr std::size_t kAuthBw = 4;

std::unique_ptr<StorageBackend> auth_backend_over_mem(EncryptedBackend** out) {
  auto backend = encrypted_backend(mem_backend(), 0x5eedULL,
                                   /*authenticated=*/true)(kAuthBw);
  *out = dynamic_cast<EncryptedBackend*>(backend.get());
  return backend;
}

TEST(AuthenticatedBackend, RoundTripsAndServesNeverWrittenAsZero) {
  EncryptedBackend* enc = nullptr;
  auto backend = auth_backend_over_mem(&enc);
  ASSERT_NE(enc, nullptr);
  EXPECT_EQ(enc->header_words(), 2u);  // [nonce][mac]
  ASSERT_TRUE(backend->resize(4).ok());
  std::vector<Word> out(kAuthBw, 7);
  ASSERT_TRUE(backend->read(1, out).ok());
  EXPECT_EQ(out, std::vector<Word>(kAuthBw, 0)) << "never-written reads as zero";
  const std::vector<Word> data = {10, 20, 30, 40};
  ASSERT_TRUE(backend->write(1, data).ok());
  ASSERT_TRUE(backend->read(1, out).ok());
  EXPECT_EQ(out, data);
}

TEST(AuthenticatedBackend, BitFlipInStoredCiphertextIsIntegrity) {
  EncryptedBackend* enc = nullptr;
  auto backend = auth_backend_over_mem(&enc);
  ASSERT_TRUE(backend->resize(4).ok());
  ASSERT_TRUE(backend->write(0, std::vector<Word>{1, 2, 3, 4}).ok());
  // Flip one bit of each stored word in turn -- header or payload, any
  // single-bit mutation must be caught.
  const std::size_t stored = kAuthBw + enc->header_words();
  for (std::size_t w = 0; w < stored; ++w) {
    std::vector<Word> raw(stored);
    ASSERT_TRUE(enc->inner().read(0, raw).ok());
    raw[w] ^= Word{1} << (w % 64);
    ASSERT_TRUE(enc->inner().write(0, raw).ok());
    std::vector<Word> out(kAuthBw);
    EXPECT_EQ(backend->read(0, out).code(), StatusCode::kIntegrity)
        << "flip in stored word " << w << " went undetected";
    raw[w] ^= Word{1} << (w % 64);  // restore for the next round
    ASSERT_TRUE(enc->inner().write(0, raw).ok());
  }
  std::vector<Word> out(kAuthBw);
  EXPECT_TRUE(backend->read(0, out).ok()) << "restored block must verify again";
}

TEST(AuthenticatedBackend, ReplayOfAStaleSnapshotIsIntegrity) {
  // The rollback attack: Bob serves an old (ciphertext, nonce, MAC) triple
  // that was once valid.  Only the client-side version counter folded into
  // the tag can catch it.
  EncryptedBackend* enc = nullptr;
  auto backend = auth_backend_over_mem(&enc);
  ASSERT_TRUE(backend->resize(4).ok());
  ASSERT_TRUE(backend->write(2, std::vector<Word>{5, 5, 5, 5}).ok());
  const std::size_t stored = kAuthBw + enc->header_words();
  std::vector<Word> snapshot(stored);
  ASSERT_TRUE(enc->inner().read(2, snapshot).ok());  // valid at version 1
  ASSERT_TRUE(backend->write(2, std::vector<Word>{6, 6, 6, 6}).ok());
  ASSERT_TRUE(enc->inner().write(2, snapshot).ok());  // roll back to v1
  std::vector<Word> out(kAuthBw);
  EXPECT_EQ(backend->read(2, out).code(), StatusCode::kIntegrity)
      << "a replayed stale-but-once-valid block must fail freshness";
}

TEST(AuthenticatedBackend, DroppedWriteIsIntegrityOnReadBack) {
  // Rollback via TamperingBackend underneath: the write is ACKed but never
  // lands, so the store still holds the never-written sentinel while the
  // client-side version table says "sealed once".
  auto backend = encrypted_backend(
      tampering_backend(mem_backend(), rollback_only(11, 1.0)), 0x5eedULL,
      /*authenticated=*/true)(kAuthBw);
  ASSERT_TRUE(backend->resize(4).ok());
  ASSERT_TRUE(backend->write(0, std::vector<Word>{9, 9, 9, 9}).ok());
  std::vector<Word> out(kAuthBw);
  EXPECT_EQ(backend->read(0, out).code(), StatusCode::kIntegrity);
}

TEST(AuthenticatedBackend, BlockTransplantIsIntegrity) {
  // Bob serves block 0's (valid!) sealed bytes for block 1: the index baked
  // into the tag catches the transplant.
  EncryptedBackend* enc = nullptr;
  auto backend = auth_backend_over_mem(&enc);
  ASSERT_TRUE(backend->resize(4).ok());
  ASSERT_TRUE(backend->write(0, std::vector<Word>{1, 1, 1, 1}).ok());
  ASSERT_TRUE(backend->write(1, std::vector<Word>{2, 2, 2, 2}).ok());
  const std::size_t stored = kAuthBw + enc->header_words();
  std::vector<Word> raw(stored);
  ASSERT_TRUE(enc->inner().read(0, raw).ok());
  ASSERT_TRUE(enc->inner().write(1, raw).ok());
  std::vector<Word> out(kAuthBw);
  EXPECT_EQ(backend->read(1, out).code(), StatusCode::kIntegrity);
  EXPECT_TRUE(backend->read(0, out).ok()) << "the untouched block still verifies";
}

// ---------------------------------------------------------------------------
// kIntegrity bypasses RetryPolicy.  A failed MAC is proof of tampering, not
// a transient fault: retrying hands the adversary more oracle queries and
// can never succeed honestly, so the retry loop must pass it straight
// through -- zero retries burned, IntegrityError (not the generic kIo path)
// surfacing from the device.

TEST(RetryBypass, DeviceDoesNotRetryIntegrityFailures) {
  BlockDevice dev(kAuthBw,
                  encrypted_backend(
                      tampering_backend(mem_backend(), corrupt_only(13, 1.0)),
                      0x5eedULL, /*authenticated=*/true),
                  RetryPolicy{8});
  dev.allocate(4);
  dev.write(0, std::vector<Word>(kAuthBw, 3));
  std::vector<Word> out(kAuthBw);
  EXPECT_THROW(dev.read(0, out), IntegrityError);
  EXPECT_EQ(dev.retries(), 0u)
      << "RetryPolicy burned attempts on a tampering proof";
}

TEST(RetryBypass, SessionSurfacesIntegrityWithZeroRetries) {
  auto built = Session::Builder()
                   .block_records(4)
                   .cache_records(64)
                   .seed(3)
                   .tampering(17, 1.0)
                   .io_retries(8)
                   .build();
  ASSERT_TRUE(built.ok()) << built.status();
  Session session = std::move(built).value();
  // Writes are ACKed (and dropped); the first read that opens a block sees
  // the tampering and fails closed.
  auto data = session.outsource(test::random_records(32, 2));
  if (data.ok()) {
    auto back = session.retrieve(*data);
    ASSERT_FALSE(back.ok()) << "rate-1.0 tampering went unnoticed";
    EXPECT_EQ(back.status().code(), StatusCode::kIntegrity);
  } else {
    EXPECT_EQ(data.status().code(), StatusCode::kIntegrity);
  }
  EXPECT_EQ(session.client().device().retries(), 0u);
}

// ---------------------------------------------------------------------------
// Algorithm-level conformance: 100 seeded trials per algorithm on the plain
// stack (plus a smaller matrix on authenticated / sharded / cached stacks).
// Exactly two outcomes are allowed per trial: identical output + identical
// trace, or clean kIntegrity.  Anything else -- wrong output with Ok, a
// crash, kIo, a burned retry -- is a conformance failure.

struct StackConfig {
  const char* name;
  std::size_t shards;
  std::uint64_t cache_blocks;
  bool auth_seam;  // add the EncryptedBackend seam in authenticated mode
};

constexpr StackConfig kStacks[] = {
    {"plain", 1, 0, false},
    {"auth_seam", 1, 0, true},
    {"sharded4_auth", 4, 0, true},
    {"cached_auth", 1, 16, true},
};

Result<Session> build_session(const StackConfig& cfg, std::uint64_t tamper_seed,
                              double rate) {
  Session::Builder b;
  b.block_records(4).cache_records(64).seed(11).io_retries(4);
  if (cfg.shards > 1) b.sharded(cfg.shards);
  if (cfg.cache_blocks > 0) b.cache(cfg.cache_blocks);
  if (cfg.auth_seam) b.encrypted(0x5eedULL, /*authenticated=*/true);
  if (rate > 0.0) b.tampering(tamper_seed, rate);
  return b.build();
}

/// Trial rate schedule: the early trials tamper rarely enough that many runs
/// complete (exercising the identical-output arm); the rest tamper often
/// enough that detection dominates (exercising the fail-closed arm).  Both
/// arms stay deterministic per (config, trial).
double trial_rate(int trial) { return trial % 5 == 0 ? 0.0005 : 0.02; }

template <typename AlgoFn>
void run_tamper_trials(const char* what, AlgoFn&& algo) {
  for (const StackConfig& cfg : kStacks) {
    auto clean = build_session(cfg, 0, 0.0);
    ASSERT_TRUE(clean.ok()) << clean.status();
    std::vector<Record> expected;
    Status ref = algo(*clean, &expected);
    ASSERT_TRUE(ref.ok()) << what << "/" << cfg.name
                          << " tamper-free run failed: " << ref;
    const std::uint64_t expected_trace = clean->trace().hash();

    const int trials = cfg.shards == 1 && !cfg.auth_seam ? 100 : 20;
    int completed = 0, detected = 0;
    for (int trial = 0; trial < trials; ++trial) {
      auto tampered = build_session(cfg, 5000 + trial, trial_rate(trial));
      ASSERT_TRUE(tampered.ok()) << tampered.status();
      std::vector<Record> got;
      Status st = algo(*tampered, &got);
      if (st.ok()) {
        ++completed;
        EXPECT_EQ(got, expected)
            << what << "/" << cfg.name << " trial " << trial
            << ": SILENT CORRUPTION -- tampered run completed with wrong output";
        EXPECT_EQ(tampered->trace().hash(), expected_trace)
            << what << "/" << cfg.name << " trial " << trial
            << ": tampering leaked into the trace";
      } else {
        ++detected;
        EXPECT_EQ(st.code(), StatusCode::kIntegrity)
            << what << "/" << cfg.name << " trial " << trial
            << ": tampering must fail closed as kIntegrity, got " << st;
      }
      EXPECT_EQ(tampered->client().device().retries(), 0u)
          << what << "/" << cfg.name << " trial " << trial
          << ": kIntegrity must bypass RetryPolicy";
    }
    // Sanity on the schedule itself: the fail-closed arm fired.  (The
    // identical-output arm is exercised on the low-rate trials whenever the
    // seed leaves them untouched; it needs no floor to be meaningful.)
    EXPECT_GT(detected, 0) << what << "/" << cfg.name;
    EXPECT_EQ(completed + detected, trials);
  }
}

TEST(TamperConformance, SortCompletesIdenticallyOrFailsClosed) {
  run_tamper_trials("sort", [](Session& s, std::vector<Record>* out) -> Status {
    auto data = s.outsource(test::random_records(32 * 4, 7));
    if (!data.ok()) return data.status();
    auto rep = s.sort(*data, /*seed=*/5);
    if (!rep.ok()) return rep.status();
    auto result = s.retrieve(*data);
    if (!result.ok()) return result.status();
    *out = std::move(*result);
    return Status::Ok();
  });
}

TEST(TamperConformance, SelectCompletesIdenticallyOrFailsClosed) {
  run_tamper_trials("select", [](Session& s, std::vector<Record>* out) -> Status {
    auto data = s.outsource(test::random_records(24 * 4, 9));
    if (!data.ok()) return data.status();
    auto r = s.select(*data, /*k=*/17, /*seed=*/5);
    if (!r.ok()) return r.status();
    out->push_back(*r);
    return Status::Ok();
  });
}

TEST(TamperConformance, QuantilesCompleteIdenticallyOrFailClosed) {
  run_tamper_trials("quantiles", [](Session& s, std::vector<Record>* out) -> Status {
    auto data = s.outsource(test::random_records(24 * 4, 13));
    if (!data.ok()) return data.status();
    auto r = s.quantiles(*data, /*q=*/4, /*seed=*/5);
    if (!r.ok()) return r.status();
    *out = std::move(*r);
    return Status::Ok();
  });
}

TEST(TamperConformance, CompactCompletesIdenticallyOrFailsClosed) {
  run_tamper_trials("compact", [](Session& s, std::vector<Record>* out) -> Status {
    std::vector<Record> v(24 * 4);
    for (std::uint64_t i = 0; i < v.size(); i += 3) v[i] = {i, i};
    auto data = s.outsource(v);
    if (!data.ok()) return data.status();
    auto rep = s.compact(*data);
    if (!rep.ok()) return rep.status();
    auto result = s.retrieve(rep->out);
    if (!result.ok()) return result.status();
    *out = std::move(*result);
    return Status::Ok();
  });
}

TEST(TamperConformance, OramEpochCompletesIdenticallyOrFailsClosed) {
  run_tamper_trials("oram", [](Session& s, std::vector<Record>* out) -> Status {
    auto oram = s.open_oram(64, oram::ShuffleKind::kDeterministic, /*seed=*/17);
    if (!oram.ok()) return oram.status();
    for (std::uint64_t i = 0; i <= oram->epoch_length(); ++i) {
      auto v = oram->access((i * 5) % 64);
      if (!v.ok()) return v.status();
      EXPECT_EQ(*v, oram->expected_value((i * 5) % 64))
          << "SILENT CORRUPTION in ORAM access " << i;
      out->push_back({i, *v});
    }
    return Status::Ok();
  });
}

}  // namespace
}  // namespace oem
