#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "obliv/trace_check.h"
#include "sortnet/external_sort.h"
#include "sortnet/networks.h"
#include "test_util.h"

namespace oem::sortnet {
namespace {

TEST(Networks, BitonicComparatorCount) {
  // n/2 * log(n) * (log(n)+1) / 2 comparators.
  EXPECT_EQ(bitonic_comparator_count(2), 1u);
  EXPECT_EQ(bitonic_comparator_count(4), 6u);
  EXPECT_EQ(bitonic_comparator_count(8), 24u);
  EXPECT_EQ(bitonic_comparator_count(16), 80u);
}

TEST(Networks, OddEvenFewerComparatorsThanBitonic) {
  for (std::uint64_t n : {8ull, 64ull, 256ull})
    EXPECT_LT(odd_even_comparator_count(n), bitonic_comparator_count(n));
}

class NetworkSortTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetworkSortTest, BitonicSortsEverySize) {
  const std::uint64_t n = GetParam();
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto v = test::random_records(n, seed);
    auto expect = v;
    std::sort(expect.begin(), expect.end(), RecordLess{});
    bitonic_sort_any(v, RecordLess{}, Record{});  // Record{} is the +inf pad
    EXPECT_EQ(v, expect) << "n=" << n << " seed=" << seed;
  }
}

TEST_P(NetworkSortTest, OddEvenSortsEverySize) {
  const std::uint64_t n = GetParam();
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto v = test::random_records(n, seed + 100);
    auto expect = v;
    std::sort(expect.begin(), expect.end(), RecordLess{});
    odd_even_sort_any(v, RecordLess{}, Record{});
    EXPECT_EQ(v, expect) << "n=" << n << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, NetworkSortTest,
                         ::testing::Values(1, 2, 3, 7, 8, 15, 16, 31, 33, 100, 255, 256));

TEST(Networks, ZeroOnePrinciple) {
  // Exhaustively verify the 8-wire bitonic network on all 0-1 inputs, which
  // by the 0-1 principle proves it sorts everything.
  for (unsigned mask = 0; mask < 256; ++mask) {
    std::vector<int> v(8);
    for (int i = 0; i < 8; ++i) v[i] = (mask >> i) & 1;
    bitonic_sort_pow2(std::span<int>(v), std::less<int>{});
    EXPECT_TRUE(std::is_sorted(v.begin(), v.end())) << "mask=" << mask;
  }
}

struct ExtSortCase {
  std::size_t B;
  std::uint64_t M;
  std::uint64_t records;
};

class ExtSortTest : public ::testing::TestWithParam<ExtSortCase> {};

TEST_P(ExtSortTest, SortsAndMatchesPrediction) {
  const auto& p = GetParam();
  Client client(test::params(p.B, p.M));
  ExtArray a = client.alloc(p.records, Client::Init::kUninit);
  auto v = test::random_records(p.records, 7);
  client.poke(a, v);
  client.reset_stats();

  ext_oblivious_sort(client, a);

  const std::uint64_t measured = client.stats().total();
  EXPECT_EQ(measured, ext_sort_predicted_ios(a.num_blocks(), p.M / p.B));

  auto out = client.peek(a);
  std::sort(v.begin(), v.end(), RecordLess{});
  v.resize(out.size(), Record{});
  std::sort(v.begin(), v.end(), RecordLess{});
  EXPECT_EQ(out, v);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ExtSortTest,
    ::testing::Values(ExtSortCase{4, 32, 64}, ExtSortCase{4, 32, 61},
                      ExtSortCase{8, 64, 512}, ExtSortCase{8, 64, 500},
                      ExtSortCase{16, 256, 4096}, ExtSortCase{4, 8, 128},
                      ExtSortCase{1, 4, 64}, ExtSortCase{16, 512, 10000}));

TEST(ExtSort, EmptiesCollectAtEnd) {
  Client client(test::params(4, 32));
  ExtArray a = client.alloc(64, Client::Init::kUninit);
  std::vector<Record> v(64);
  for (std::uint64_t i = 0; i < 64; ++i)
    v[i] = (i % 3 == 0) ? Record{} : Record{100 - i, i};
  client.poke(a, v);
  ext_oblivious_sort(client, a);
  auto out = client.peek(a);
  EXPECT_TRUE(test::padded_sorted(out));
  // Non-empty prefix, empty suffix.
  bool seen_empty = false;
  for (const Record& r : out) {
    if (r.is_empty()) seen_empty = true;
    else EXPECT_FALSE(seen_empty) << "real record after empty cell";
  }
}

TEST(ExtSort, OddEvenVariantSorts) {
  Client client(test::params(4, 32));
  ExtArray a = client.alloc(256, Client::Init::kUninit);
  auto v = test::random_records(256, 3);
  client.poke(a, v);
  ExtSortOptions opts;
  opts.odd_even = true;
  ext_oblivious_sort(client, a, opts);
  auto out = client.peek(a);
  EXPECT_TRUE(test::same_multiset(out, v));
  EXPECT_TRUE(test::padded_sorted(out));
}

TEST(ExtSort, IsOblivious) {
  auto result = obliv::check_oblivious(
      test::params(4, 64), 256, obliv::canonical_inputs(2),
      [](Client& c, const ExtArray& a) { ext_oblivious_sort(c, a); });
  EXPECT_TRUE(result.oblivious) << result.diagnosis;
}

TEST(ExtSort, GrowthIsPolylogOverLinear) {
  // I/Os per block should grow ~log^2(n/m): superlinear in log n, and the
  // ratio between successive doublings should increase.
  const std::size_t B = 8;
  const std::uint64_t M = 8 * 16;
  std::vector<double> per_block;
  for (std::uint64_t n_blocks : {64ull, 256ull, 1024ull}) {
    per_block.push_back(static_cast<double>(ext_sort_predicted_ios(n_blocks, M / B)) /
                        static_cast<double>(n_blocks));
  }
  EXPECT_GT(per_block[1], per_block[0]);
  EXPECT_GT(per_block[2], per_block[1]);
}

TEST(UnitSort, SortsUnitsByFirstRecord) {
  Client client(test::params(4, 64));
  const std::uint64_t units = 32, ub = 2;
  ExtArray a = client.alloc_blocks(units * ub, Client::Init::kUninit);
  // Unit u: header {key=units-u, u}, payload marker in second block.
  std::vector<Record> flat(units * ub * 4);
  for (std::uint64_t u = 0; u < units; ++u) {
    flat[u * 8 + 0] = {units - u, u};
    flat[u * 8 + 4] = {777, u};  // payload travels with the header
  }
  client.poke(a, flat);
  ext_oblivious_unit_sort(client, a, ub);
  auto out = client.peek(a);
  for (std::uint64_t u = 0; u < units; ++u) {
    EXPECT_EQ(out[u * 8 + 0].key, u + 1);            // sorted headers
    EXPECT_EQ(out[u * 8 + 4].value, out[u * 8].value);  // payload stayed attached
  }
}

TEST(UnitSort, DummiesSortLast) {
  Client client(test::params(4, 64));
  const std::uint64_t units = 16, ub = 1;
  ExtArray a = client.alloc_blocks(units * ub, Client::Init::kUninit);
  std::vector<Record> flat(units * 4);
  for (std::uint64_t u = 0; u < units; ++u)
    flat[u * 4] = (u % 2 == 0) ? Record{} : Record{u, u};
  client.poke(a, flat);
  ext_oblivious_unit_sort(client, a, ub);
  auto out = client.peek(a);
  for (std::uint64_t u = 0; u < 8; ++u) EXPECT_FALSE(out[u * 4].is_empty());
  for (std::uint64_t u = 8; u < 16; ++u) EXPECT_TRUE(out[u * 4].is_empty());
}

TEST(SortRegionInCache, SortsSlice) {
  Client client(test::params(4, 64));
  ExtArray a = client.alloc(64, Client::Init::kUninit);
  auto v = test::random_records(64, 5);
  client.poke(a, v);
  sort_region_in_cache(client, a, 4, 8);  // records [16, 48)
  auto out = client.peek(a);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(out[i], v[i]);
  for (std::size_t i = 48; i < 64; ++i) EXPECT_EQ(out[i], v[i]);
  std::vector<Record> mid(out.begin() + 16, out.begin() + 48);
  EXPECT_TRUE(std::is_sorted(mid.begin(), mid.end(), RecordLess{}));
}

}  // namespace
}  // namespace oem::sortnet
