// IoEngine suite: ShardedBackend striping/parallel dispatch, AsyncBackend
// FIFO submission semantics, and the tentpole guarantee -- for every
// algorithm the recorded per-block trace is byte-identical across
// {mem, sharded(4), sharded(4)+prefetch, faulty(seed)+retry, remote
// combinations including split-phase sharded depth-4 and the write-back
// cache}: parallel placement, overlapped dispatch, striping x depth wire
// pipelining, client-side caching and fault recovery never change what Bob
// observes.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "api/session.h"
#include "core/logstar_compact.h"
#include "core/loose_compact.h"
#include "extmem/io_engine.h"
#include "extmem/pipeline.h"
#include "extmem/remote.h"
#include "server/server.h"
#include "server/subprocess.h"
#include "obliv/trace_check.h"
#include "test_util.h"

namespace oem {
namespace {

LatencyProfile fast_profile() {
  LatencyProfile p;
  p.per_op_ns = 1000;
  p.per_word_ns = 10;
  p.real_sleep = false;
  return p;
}

// ---------------------------------------------------------------------------
// ShardedBackend.

TEST(ShardedBackend, StripesRoundRobinAcrossShards) {
  constexpr std::size_t kBw = 4;
  auto factory = sharded_backend(mem_backend(), 4);
  auto backend = factory(kBw);
  auto* sharded = dynamic_cast<ShardedBackend*>(backend.get());
  ASSERT_NE(sharded, nullptr);
  ASSERT_TRUE(backend->resize(10).ok());

  // Capacity splits as ceil((10 - s) / 4) per shard.
  EXPECT_EQ(sharded->shard(0).num_blocks(), 3u);  // 0, 4, 8
  EXPECT_EQ(sharded->shard(1).num_blocks(), 3u);  // 1, 5, 9
  EXPECT_EQ(sharded->shard(2).num_blocks(), 2u);  // 2, 6
  EXPECT_EQ(sharded->shard(3).num_blocks(), 2u);  // 3, 7

  // Block b lands on shard b mod 4 at inner index b div 4.
  for (std::uint64_t b = 0; b < 10; ++b) {
    std::vector<Word> in(kBw, 100 + b);
    ASSERT_TRUE(backend->write(b, in).ok());
  }
  for (std::uint64_t b = 0; b < 10; ++b) {
    std::vector<Word> out(kBw);
    ASSERT_TRUE(sharded->shard(b % 4).read(b / 4, out).ok());
    EXPECT_EQ(out[0], 100 + b) << "block " << b;
  }
}

TEST(ShardedBackend, BatchesDispatchToWorkersInParallel) {
  constexpr std::size_t kBw = 4;
  // Force the worker pool on so the parallel path is exercised (and raced
  // under TSan) even on single-core CI hosts.
  auto factory = sharded_backend(latency_backend(mem_backend(), fast_profile()), 4,
                                 /*parallel_dispatch=*/1);
  auto backend = factory(kBw);
  auto* sharded = dynamic_cast<ShardedBackend*>(backend.get());
  ASSERT_NE(sharded, nullptr);
  ASSERT_TRUE(backend->resize(64).ok());

  std::vector<std::uint64_t> ids(32);
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  std::vector<Word> buf(ids.size() * kBw, 7);
  ASSERT_TRUE(backend->write_many(ids, buf).ok());
  ASSERT_TRUE(backend->read_many(ids, buf).ok());
  EXPECT_EQ(sharded->parallel_dispatches(), 2u)
      << "a multi-shard batch must take the worker-pool path";

  // Each shard's LatencyBackend saw exactly one op per batch: round trips to
  // different shards are charged (and slept) in parallel, not serialized.
  for (std::size_t s = 0; s < 4; ++s) {
    auto* lat = dynamic_cast<LatencyBackend*>(&sharded->shard(s));
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->ops(), 2u) << "shard " << s;
    EXPECT_EQ(lat->simulated_ns(), 2 * (1000u + 10u * 8 * kBw)) << "shard " << s;
  }

  // A single-shard batch runs inline (no dispatch overhead).
  const std::vector<std::uint64_t> one_shard = {0, 4, 8};
  std::vector<Word> small(one_shard.size() * kBw);
  ASSERT_TRUE(backend->read_many(one_shard, small).ok());
  EXPECT_EQ(sharded->parallel_dispatches(), 2u);
}

TEST(ShardedBackend, AlternatingPartialBatchesStressTheWorkerPool) {
  // Regression: a worker woken with an EMPTY slice used to skip the
  // completion count, so run_batch could return while the worker was still
  // between "observe generation" and "read my slice" -- racing the next
  // batch's partition() and occasionally running a slice twice (deadlock).
  // Alternate batches that touch disjoint shard subsets back-to-back.
  constexpr std::size_t kBw = 2;
  auto backend = sharded_backend(mem_backend(), 4, /*parallel_dispatch=*/1)(kBw);
  ASSERT_TRUE(backend->resize(64).ok());
  std::vector<Word> buf(2 * kBw);
  for (int iter = 0; iter < 5000; ++iter) {
    // Shards {0, 1} then shards {2, 3}.
    const std::vector<std::uint64_t> a = {0, 1}, b = {2, 3};
    buf.assign(2 * kBw, static_cast<Word>(iter));
    ASSERT_TRUE(backend->write_many(a, buf).ok());
    ASSERT_TRUE(backend->write_many(b, buf).ok());
  }
  std::vector<Word> out(kBw);
  ASSERT_TRUE(backend->read(3, out).ok());
  EXPECT_EQ(out[0], 4999u);
}

TEST(ShardedBackend, DuplicateIdsInOneBatchKeepSequentialSemantics) {
  constexpr std::size_t kBw = 2;
  auto backend = sharded_backend(mem_backend(), 4)(kBw);
  ASSERT_TRUE(backend->resize(8).ok());
  // Same block written twice in one batch: the later entry must win, exactly
  // like the sequential per-block loop.
  const std::vector<std::uint64_t> ids = {5, 2, 5};
  const std::vector<Word> in = {1, 1, 2, 2, 3, 3};
  ASSERT_TRUE(backend->write_many(ids, in).ok());
  std::vector<Word> out(kBw);
  ASSERT_TRUE(backend->read(5, out).ok());
  EXPECT_EQ(out, (std::vector<Word>{3, 3}));
}

// ---------------------------------------------------------------------------
// AsyncBackend.

TEST(AsyncBackend, ExecutesSubmissionsInFifoOrder) {
  constexpr std::size_t kBw = 2;
  auto backend_owner = async_backend(mem_backend())(kBw);
  auto* async = dynamic_cast<AsyncBackend*>(backend_owner.get());
  ASSERT_NE(async, nullptr);
  ASSERT_TRUE(backend_owner->resize(4).ok());

  // write -> read -> write -> read on the same block: each read must observe
  // exactly the preceding write (FIFO makes the hazard impossible).
  std::vector<Word> r1(kBw), r2(kBw);
  async->submit_write_many({0}, {11, 11});
  auto t1 = async->submit_read_many(std::vector<std::uint64_t>{0}, r1);
  async->submit_write_many({0}, {22, 22});
  auto t2 = async->submit_read_many(std::vector<std::uint64_t>{0}, r2);
  ASSERT_TRUE(async->wait(t2).ok());
  ASSERT_TRUE(async->wait(t1).ok());  // waiting out of order is fine
  EXPECT_EQ(r1, (std::vector<Word>{11, 11}));
  EXPECT_EQ(r2, (std::vector<Word>{22, 22}));
  EXPECT_EQ(async->submitted(), 4u);
}

TEST(AsyncBackend, SynchronousOpsDrainTheQueueFirst) {
  constexpr std::size_t kBw = 2;
  auto backend_owner = async_backend(mem_backend())(kBw);
  auto* async = dynamic_cast<AsyncBackend*>(backend_owner.get());
  ASSERT_TRUE(backend_owner->resize(4).ok());

  for (Word v = 0; v < 64; ++v) async->submit_write_many({1}, {v, v});
  // A plain read must see the last submitted write.
  std::vector<Word> out(kBw);
  ASSERT_TRUE(backend_owner->read(1, out).ok());
  EXPECT_EQ(out, (std::vector<Word>{63, 63}));
  ASSERT_TRUE(async->drain().ok());
}

// ---------------------------------------------------------------------------
// The tentpole guarantee: for every algorithm the event-level trace is
// byte-identical across {mem, sharded(4), sharded(4)+prefetch,
// faulty(seed)+retry, remote, remote+sharded4+prefetch, remote+faulty+retry,
// remote+sharded4+depth4 (split-phase striping x depth -- compared against
// mem at the same depth, since depth is a public scheduling parameter the
// schedule legitimately depends on), remote+sharded4+cache (the write-back
// cache absorbs wire traffic below the recorder), and
// faulty+sharded4+prefetch+remote (per-shard faults firing at begin time in
// the split-phase path, recovered by drain-and-replay under the retry
// budget), and oem_server_process{,_sharded4_prefetch} (the same workloads
// through the spawned stand-alone oem-server binary -- a real exec
// boundary)}.  None of it may change what Bob observes.

struct EngineCase {
  std::string name;
  std::size_t shards;
  bool prefetch;
  bool faulty;
  bool remote = false;
  std::size_t depth = 2;
  std::size_t cache_blocks = 0;
  /// Route through the real oem-server binary (fork/exec, separate address
  /// space) instead of the in-process loopback server.
  bool out_of_process = false;
  /// Compute-plane lanes.  The references all run at 1 (serial), so a row
  /// with compute_threads > 1 pins the worker pool byte-identical to the
  /// serial compute path.
  std::size_t compute_threads = 1;
  /// Authenticated encryption at the backend seam (MAC + version table per
  /// block).  Verification is below the trace recorder, so the row must be
  /// byte-identical to mem -- failing closed is a status-path property, not
  /// a trace property.
  bool encrypted_auth = false;
  /// io_uring + O_DIRECT file store (DirectFileBackend; threaded fallback on
  /// refusing kernels).  Engine choice is pure mechanism: same trace.
  bool direct_file = false;
  /// Attach the session to a shared CacheCore and keep a sibling session's
  /// residency parked in the same slab for the whole run: cross-session
  /// eviction pressure must be invisible in Bob's view.
  bool shared_cache = false;
};

std::vector<EngineCase> engine_cases() {
  return {{"mem", 1, false, false},
          {"sharded4", 4, false, false},
          {"sharded4_prefetch", 4, true, false},
          {"faulty_retry", 1, false, true},
          {"remote", 1, false, false, true},
          {"remote_sharded4_prefetch", 4, true, false, true},
          {"remote_faulty_retry", 1, false, true, true},
          {"remote_sharded4_depth4", 4, true, false, true, /*depth=*/4},
          {"remote_sharded4_cache", 4, true, false, true, 2, /*cache=*/32},
          {"faulty_sharded4_splitphase_retry", 4, true, true, true, /*depth=*/4},
          // The exec boundary: the same workloads through the stand-alone
          // oem-server process.  Crossing into another address space (and a
          // real kernel socket pair) must be just as invisible to Bob's view
          // as the in-process loopback is.
          {"oem_server_process", 1, false, false, true, 2, 0, /*oop=*/true},
          {"oem_server_sharded4_prefetch", 4, true, false, true, 2, 0, true},
          // The compute plane: chunk-parallel pass compute + parallel crypto
          // on 4 lanes, pinned against the serial mem reference -- alone and
          // stacked on the deepest wire pipeline in the matrix.
          {"compute4", 1, false, false, false, 2, 0, false, /*threads=*/4},
          {"compute4_remote_sharded4_depth4", 4, true, false, true, 4, 0, false,
           4},
          // Authenticated-encryption seam (MAC verify/seal on every transfer):
          // the freshness machinery must be invisible in Bob's view.
          {"encrypted_auth", 1, false, false, false, 2, 0, false, 1,
           /*auth=*/true},
          // The O_DIRECT/io_uring disk engine at pipeline depth 4: real
          // kernel-queued I/O (or its threaded fallback) pinned against mem
          // at the same depth.
          {"direct_file_depth4", 1, true, false, false, /*depth=*/4, 0, false,
           1, false, /*direct=*/true},
          // A remote session whose write-back cache is one VIEW of a shared
          // CacheCore under live cross-session residency pressure.
          {"shared_cache_remote", 1, true, false, true, 2, 0, false, 1, false,
           false, /*shared_cache=*/true}};
}

struct AlgoRun {
  std::vector<TraceEvent> events;
  std::vector<Record> result;
};

template <typename AlgoFn>
void run_engine_case(const EngineCase& ec, std::span<const Record> input,
                     std::size_t depth, AlgoRun* run, AlgoFn&& algo) {
  // Each remote run gets a fresh server (fresh stores): in-process loopback
  // by default, the spawned oem-server binary for out_of_process rows.
  std::unique_ptr<RemoteServer> server;
  std::unique_ptr<server::SpawnedServer> spawned;
  auto builder = Session::Builder()
                     .block_records(4)
                     .cache_records(64)
                     .seed(5)
                     .sharded(ec.shards)
                     .async_prefetch(ec.prefetch)
                     .pipeline_depth(depth)
                     .compute_threads(ec.compute_threads)
                     .fault_injection(ec.faulty ? 77 : 0, ec.faulty ? 0.02 : 0.0);
  // A striped faulty store needs a budget that covers every shard firing
  // once across consecutive attempts (each shard rolls its own decisions;
  // split-phase begin gates and sync replays roll separately), so the
  // sharded fault rows get headroom above the single-shard default of 4.
  if (ec.faulty) builder.io_retries(8);
  if (ec.cache_blocks > 0) builder.cache(ec.cache_blocks);
  if (ec.encrypted_auth) builder.encrypted(0x5eedULL, /*authenticated=*/true);
  if (ec.direct_file) builder.file_backed().direct_io();
  SharedCacheHandle shared_core;
  if (ec.shared_cache) {
    shared_core = make_shared_cache(32);
    builder.shared_cache(shared_core);
  }
  if (ec.remote && ec.out_of_process) {
    spawned = std::make_unique<server::SpawnedServer>();
    ASSERT_TRUE(spawned->health().ok()) << ec.name << ": " << spawned->health();
    builder.remote(spawned->host(), spawned->port());
  } else if (ec.remote) {
    server = std::make_unique<RemoteServer>();
    ASSERT_TRUE(server->health().ok()) << server->health();
    builder.remote(server->host(), server->port());
  }
  auto built = builder.build();
  ASSERT_TRUE(built.ok()) << ec.name << ": " << built.status();
  Session session = std::move(built).value();
  // The sibling session for shared_cache rows: it parks its own residency in
  // the SAME CacheCore slab and stays alive for the whole run, so the row
  // under test constantly evicts around another session's blocks.
  std::optional<Session> sibling;
  if (ec.shared_cache) {
    auto sib = Session::Builder()
                   .block_records(4)
                   .cache_records(64)
                   .seed(6)
                   .shared_cache(shared_core)
                   .build();
    ASSERT_TRUE(sib.ok()) << ec.name << ": " << sib.status();
    sibling.emplace(std::move(sib).value());
    auto parked = sibling->outsource(test::random_records(32, 31));
    ASSERT_TRUE(parked.ok()) << ec.name;
  }
  auto data = session.outsource(std::vector<Record>(input.begin(), input.end()));
  ASSERT_TRUE(data.ok()) << ec.name;
  session.trace().set_record_events(true);
  session.trace().reset();
  algo(session, *data, &run->result);
  run->events = session.trace().events();
}

template <typename AlgoFn>
void expect_trace_invariant(const char* what, std::uint64_t n_records, AlgoFn&& algo) {
  const auto input = test::random_records(n_records, 29);
  // Reference runs: plain mem at each depth the matrix uses, built lazily
  // (the matrix's own "mem" case doubles as the depth-2 reference, so no
  // run is duplicated).  Depth is a public scheduling parameter the
  // submission schedule legitimately depends on, so a depth-4 engine case
  // is pinned against mem AT depth 4, not against the depth-2 default.
  std::map<std::size_t, AlgoRun> mem_ref;
  const std::size_t mem_depth = engine_cases().front().depth;  // "mem"'s own run
  for (const auto& ec : engine_cases()) {
    if (ec.depth == mem_depth || mem_ref.count(ec.depth) != 0) continue;
    AlgoRun run;
    run_engine_case({"mem", 1, false, false}, input, ec.depth, &run, algo);
    if (::testing::Test::HasFatalFailure()) return;
    mem_ref.emplace(ec.depth, std::move(run));
  }
  for (const auto& ec : engine_cases()) {
    AlgoRun run;
    run_engine_case(ec, input, ec.depth, &run, algo);
    if (::testing::Test::HasFatalFailure()) return;
    if (ec.name == "mem") {
      mem_ref.emplace(ec.depth, std::move(run));
      continue;  // the reference itself: nothing to compare against
    }
    const AlgoRun& ref = mem_ref.at(ec.depth);
    EXPECT_EQ(run.events.size(), ref.events.size()) << what << ": " << ec.name;
    EXPECT_TRUE(run.events == ref.events)
        << what << ": " << ec.name
        << " trace diverged from mem -- sharding/prefetch/remote/cache leaked "
           "into Bob's view";
    EXPECT_EQ(run.result, ref.result) << what << ": " << ec.name;
  }
}

// For each pipeline depth k, the trace over the remote backend (prefetching,
// wire-pipelined) must be byte-identical to the in-memory trace at the same
// k, and the TOTAL block I/O volume must not depend on k at all: depth only
// reorders submissions within the hazard rules, it never adds or removes an
// access.  k = 2 must also reproduce the default-depth schedule exactly
// (today's double buffer, bit for bit).
template <typename AlgoFn>
void expect_depth_sweep_invariant(const char* what, std::uint64_t n_records,
                                  AlgoFn&& algo) {
  const auto input = test::random_records(n_records, 29);
  const EngineCase mem_case{"mem", 1, false, false, false};
  const EngineCase remote_case{"remote_prefetch", 1, true, false, true};

  AlgoRun default_run;
  run_engine_case(mem_case, input, /*depth=*/2, &default_run, algo);
  if (::testing::Test::HasFatalFailure()) return;

  for (std::size_t k : {1, 2, 4, 8}) {
    AlgoRun mem_run, remote_run;
    run_engine_case(mem_case, input, k, &mem_run, algo);
    run_engine_case(remote_case, input, k, &remote_run, algo);
    if (::testing::Test::HasFatalFailure()) return;
    EXPECT_TRUE(remote_run.events == mem_run.events)
        << what << ": depth " << k
        << " remote trace diverged from mem -- the wire leaked into Bob's view";
    EXPECT_EQ(remote_run.result, mem_run.result) << what << ": depth " << k;
    EXPECT_EQ(mem_run.events.size(), default_run.events.size())
        << what << ": depth " << k << " changed the block I/O volume";
    EXPECT_EQ(mem_run.result, default_run.result) << what << ": depth " << k;
    if (k == 2) {
      EXPECT_TRUE(mem_run.events == default_run.events)
          << what << ": depth 2 must reproduce the default schedule bit for bit";
    }
  }
}

// The seven algorithm drivers, shared by the engine matrix and the depth
// sweep below.

void sort_algo(Session& s, const ExtArray& a, std::vector<Record>* out) {
  auto rep = s.sort(a, /*seed=*/11);
  ASSERT_TRUE(rep.ok()) << rep.status();
  auto data = s.retrieve(a);
  ASSERT_TRUE(data.ok());
  *out = std::move(*data);
}

void select_algo(Session& s, const ExtArray& a, std::vector<Record>* out) {
  auto r = s.select(a, a.num_records() / 2, /*seed=*/11);
  ASSERT_TRUE(r.ok()) << r.status();
  *out = {*r};
}

void quantiles_algo(Session& s, const ExtArray& a, std::vector<Record>* out) {
  auto r = s.quantiles(a, 3, /*seed=*/11);
  ASSERT_TRUE(r.ok()) << r.status();
  *out = std::move(*r);
}

void compact_algo(Session& s, const ExtArray& a, std::vector<Record>* out) {
  auto r = s.compact(a);
  ASSERT_TRUE(r.ok()) << r.status();
  auto data = s.retrieve(r->out);
  ASSERT_TRUE(data.ok());
  *out = std::move(*data);
}

void loose_algo(Session& s, const ExtArray& a, std::vector<Record>* out) {
  auto res = core::loose_compact_blocks(
      s.client(), a, a.num_blocks() / 5,
      [](std::uint64_t, const BlockBuf& blk) {
        return !blk[0].is_empty() && blk[0].key % 5 == 0;
      },
      /*seed=*/13);
  auto data = s.retrieve(res.out);
  ASSERT_TRUE(data.ok());
  *out = std::move(*data);
}

void logstar_algo(Session& s, const ExtArray& a, std::vector<Record>* out) {
  auto res = core::logstar_compact_blocks(
      s.client(), a, a.num_blocks() / 5,
      [](std::uint64_t, const BlockBuf& blk) {
        return !blk[0].is_empty() && blk[0].key % 3 == 0;
      },
      /*seed=*/13);
  auto data = s.retrieve(res.out);
  ASSERT_TRUE(data.ok());
  *out = std::move(*data);
}

void oram_algo(Session& s, const ExtArray&, std::vector<Record>* out) {
  // Build + one epoch of accesses + the epoch reshuffle, as one sequence.
  auto oram = s.open_oram(64, oram::ShuffleKind::kRandomized, /*seed=*/23);
  ASSERT_TRUE(oram.ok()) << oram.status();
  for (std::uint64_t i = 0; i <= oram->epoch_length(); ++i) {
    auto v = oram->access((i * 7) % 64);
    ASSERT_TRUE(v.ok()) << v.status();
    out->push_back({i, *v});
  }
}

TEST(IoEngineTraceEquivalence, Sort) { expect_trace_invariant("sort", 48 * 4, sort_algo); }

TEST(IoEngineTraceEquivalence, Select) {
  expect_trace_invariant("select", 40 * 4, select_algo);
}

TEST(IoEngineTraceEquivalence, Quantiles) {
  expect_trace_invariant("quantiles", 40 * 4, quantiles_algo);
}

TEST(IoEngineTraceEquivalence, Compact) {
  expect_trace_invariant("compact", 32 * 4, compact_algo);
}

TEST(IoEngineTraceEquivalence, LooseCompaction) {
  expect_trace_invariant("loose", 128 * 4, loose_algo);
}

TEST(IoEngineTraceEquivalence, LogstarCompaction) {
  expect_trace_invariant("logstar", 128 * 4, logstar_algo);
}

TEST(IoEngineTraceEquivalence, OramAccessSequence) {
  expect_trace_invariant("oram", 4, oram_algo);
}

// ---------------------------------------------------------------------------
// The depth sweep: k in {1, 2, 4, 8} pinned byte-identical between mem and
// the wire-pipelined remote backend at every k, with the block I/O volume
// independent of k, for every algorithm.

TEST(PipelineDepthSweep, Sort) { expect_depth_sweep_invariant("sort", 48 * 4, sort_algo); }

TEST(PipelineDepthSweep, Select) {
  expect_depth_sweep_invariant("select", 40 * 4, select_algo);
}

TEST(PipelineDepthSweep, Quantiles) {
  expect_depth_sweep_invariant("quantiles", 40 * 4, quantiles_algo);
}

TEST(PipelineDepthSweep, Compact) {
  expect_depth_sweep_invariant("compact", 32 * 4, compact_algo);
}

TEST(PipelineDepthSweep, LooseCompaction) {
  expect_depth_sweep_invariant("loose", 128 * 4, loose_algo);
}

TEST(PipelineDepthSweep, LogstarCompaction) {
  expect_depth_sweep_invariant("logstar", 128 * 4, logstar_algo);
}

TEST(PipelineDepthSweep, OramAccessSequence) {
  expect_depth_sweep_invariant("oram", 4, oram_algo);
}

// ---------------------------------------------------------------------------
// Obliviousness regression for the migrated loops: the pipeline migration
// must never introduce data-dependent I/O.  Strict form: for a fixed seed the
// trace is bit-identical across data-identical-shaped adversarial inputs.

TEST(PipelineObliviousness, ObliviousSortCopyLoops) {
  core::ObliviousSortOptions opts;
  opts.min_recursive_blocks = 32;   // force recursion: level assembly runs
  opts.paper_dense_rule = false;    // the dense shortcut would skip it at lab scale
  auto result = obliv::check_oblivious(
      test::params(4, 64), 512, obliv::canonical_inputs(4),
      [&](Client& c, const ExtArray& a) { core::oblivious_sort(c, a, 5, opts); });
  EXPECT_TRUE(result.oblivious) << result.diagnosis;
}

TEST(PipelineObliviousness, LooseCompaction) {
  auto result = obliv::check_oblivious(
      test::params(4, 512), 512, obliv::canonical_inputs(5),
      [](Client& c, const ExtArray& a) {
        core::loose_compact_blocks(c, a, a.num_blocks() / 5,
                                   core::block_nonempty_pred(), 11);
      });
  EXPECT_TRUE(result.oblivious) << result.diagnosis;
}

TEST(PipelineObliviousness, LogstarCompaction) {
  auto result = obliv::check_oblivious(
      test::params(4, 32), 256, obliv::canonical_inputs(6),
      [](Client& c, const ExtArray& a) {
        core::logstar_compact_blocks(c, a, a.num_blocks() / 5,
                                     core::block_nonempty_pred(), 11);
      });
  EXPECT_TRUE(result.oblivious) << result.diagnosis;
}

TEST(PipelineObliviousness, OramReshuffleIsDataIndependent) {
  // The reshuffle's trace is a function of (N, M, B, seed) only.  Two ORAMs
  // with the same seed but different access patterns must spend identical
  // I/O, and the construction-time reshuffle must record identical events.
  std::vector<std::uint64_t> hashes;
  std::vector<std::uint64_t> lengths;
  std::vector<std::uint64_t> reshuffle_ios;
  for (int pattern = 0; pattern < 2; ++pattern) {
    Client client(test::params(4, 64));
    client.device().trace().reset();
    oram::SqrtOram o(client, 64, oram::ShuffleKind::kRandomized, /*seed=*/9);
    hashes.push_back(client.device().trace().hash());  // ctor reshuffle only
    for (std::uint64_t i = 0; i < 2 * o.epoch_length(); ++i)
      o.access(pattern == 0 ? 0 : (i * 13) % 64);  // degenerate vs spread
    lengths.push_back(client.device().trace().size());
    reshuffle_ios.push_back(o.stats().reshuffle_ios);
  }
  EXPECT_EQ(hashes[0], hashes[1]) << "construction reshuffle trace diverged";
  EXPECT_EQ(lengths[0], lengths[1]) << "access-sequence I/O volume leaked data";
  EXPECT_EQ(reshuffle_ios[0], reshuffle_ios[1]);
}

// ---------------------------------------------------------------------------
// The pipeline helper itself, driven directly.

TEST(BlockPipeline, OverlappingWindowsStayCoherentUnderPrefetch) {
  // A chain of passes where pass t reads the block pass t-1 wrote (never
  // eligible for early prefetch): FIFO submission must keep every pass
  // reading the freshest data, sync and async alike.
  for (bool prefetch : {false, true}) {
    ClientParams params = test::params(4, 64);
    if (prefetch) params.backend = async_backend(mem_backend());
    Client client(params);
    ExtArray a = client.alloc_blocks(9, Client::Init::kEmpty);
    run_block_pipeline(
        client, 8,
        [&](std::uint64_t t, PipelinePass& io) {
          io.read_from = &a;
          io.write_to = &a;
          io.reads.push_back(t);
          io.writes.push_back(t + 1);
        },
        [&](std::uint64_t, std::span<Record> buf) {
          for (Record& r : buf) r.value += 1;  // increment the running block
        });
    auto all = client.peek(a);
    // Block 8's records carry 8 increments each.
    for (std::size_t r = 0; r < 4; ++r)
      EXPECT_EQ(all[8 * 4 + r].value, 8u) << (prefetch ? "async" : "sync");
  }
}

TEST(BlockPipeline, ComputeThrowWithPrefetchInFlightIsSafe) {
  // Regression: a compute() exception used to unwind the pipeline's wire
  // buffers while the async I/O thread still held a pointer into them
  // (write-after-free).  The pipeline must flush the device before its
  // buffers die, propagate the exception, and leave the client usable.
  ClientParams params = test::params(4, 64);
  params.backend = async_backend(mem_backend());
  Client client(params);
  ExtArray a = client.alloc_blocks(32, Client::Init::kEmpty);
  struct Boom {};
  EXPECT_THROW(
      run_block_pipeline(
          client, 8,
          [&](std::uint64_t t, PipelinePass& io) {
            io.read_from = &a;
            io.write_to = &a;
            for (std::uint64_t j = 0; j < 4; ++j) {
              io.reads.push_back(t * 4 + j);
              io.writes.push_back(t * 4 + j);
            }
          },
          [&](std::uint64_t t, std::span<Record>) {
            if (t == 2) throw Boom{};  // while pass 3's prefetch is in flight
          }),
      Boom);
  // The device drained on unwind: normal synchronous access still works.
  auto all = client.peek(a);
  EXPECT_EQ(all.size(), 32u * 4);
}

TEST(BlockPipeline, DisjointPassesPrefetchWithIdenticalTrace) {
  // Trace (and results) must not depend on whether the backend is async.
  std::vector<std::uint64_t> hashes;
  std::vector<std::vector<Record>> outs;
  for (bool prefetch : {false, true}) {
    ClientParams params = test::params(4, 64);
    if (prefetch) params.backend = async_backend(mem_backend());
    Client client(params);
    ExtArray src = client.alloc_blocks(16, Client::Init::kUninit);
    ExtArray dst = client.alloc_blocks(16, Client::Init::kUninit);
    client.poke(src, test::random_records(16 * 4, 3));
    client.device().trace().reset();
    run_block_pipeline(
        client, 4,
        [&](std::uint64_t t, PipelinePass& io) {
          io.read_from = &src;
          io.write_to = &dst;
          for (std::uint64_t j = 0; j < 4; ++j) {
            io.reads.push_back(t * 4 + j);
            io.writes.push_back(t * 4 + j);
          }
        },
        [](std::uint64_t, std::span<Record>) {});
    hashes.push_back(client.device().trace().hash());
    outs.push_back(client.peek(dst));
  }
  EXPECT_EQ(hashes[0], hashes[1]) << "prefetch changed the adversary's view";
  EXPECT_EQ(outs[0], outs[1]);
}

}  // namespace
}  // namespace oem
