#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/shuffle_deal.h"
#include "obliv/trace_check.h"
#include "test_util.h"

namespace oem::core {
namespace {

unsigned color3(const Record& r) { return static_cast<unsigned>(r.key % 3); }

TEST(MultiwayConsolidate, BlocksAreMonochromaticFullOrEmpty) {
  Client client(test::params(4, 512));
  const std::uint64_t n = 64;
  ExtArray a = client.alloc_blocks(n, Client::Init::kUninit);
  auto v = test::random_records(n * 4, 5);
  client.poke(a, v);

  MultiwayResult res = multiway_consolidate(client, a, 3, color3);
  ASSERT_TRUE(res.status.ok()) << res.status.message();

  auto out = client.peek(res.out);
  const std::uint64_t nb = res.out.num_blocks();
  const std::uint64_t tail_start = nb - 4 * 3;
  for (std::uint64_t b = 0; b < nb; ++b) {
    std::set<unsigned> colors_in_block;
    std::size_t cnt = 0;
    for (std::size_t r = 0; r < 4; ++r) {
      const Record& rec = out[b * 4 + r];
      if (!rec.is_empty()) {
        colors_in_block.insert(color3(rec));
        ++cnt;
      }
    }
    EXPECT_LE(colors_in_block.size(), 1u) << "block " << b << " mixes colors";
    if (b < tail_start) {
      EXPECT_TRUE(cnt == 0 || cnt == 4) << "partial block " << b << " before tail";
    }
  }
}

TEST(MultiwayConsolidate, ConservesRecordsAndCounts) {
  Client client(test::params(4, 512));
  const std::uint64_t n = 50;
  ExtArray a = client.alloc_blocks(n, Client::Init::kUninit);
  auto v = test::random_records(n * 4, 7);
  client.poke(a, v);
  MultiwayResult res = multiway_consolidate(client, a, 3, color3);
  ASSERT_TRUE(res.status.ok());
  EXPECT_TRUE(test::same_multiset(client.peek(res.out), v));
  std::map<unsigned, std::uint64_t> expect;
  for (const Record& r : v) expect[color3(r)]++;
  for (unsigned c = 0; c < 3; ++c) EXPECT_EQ(res.color_records[c], expect[c]);
}

TEST(MultiwayConsolidate, SkewedSingleColorInput) {
  // Every record the same color: the quota argument must still hold.
  Client client(test::params(4, 512));
  const std::uint64_t n = 40;
  ExtArray a = client.alloc_blocks(n, Client::Init::kUninit);
  client.poke(a, test::iota_records(n * 4));
  MultiwayResult res = multiway_consolidate(
      client, a, 4, [](const Record&) -> unsigned { return 2; });
  ASSERT_TRUE(res.status.ok()) << res.status.message();
  EXPECT_TRUE(test::same_multiset(client.peek(res.out), test::iota_records(n * 4)));
}

TEST(MultiwayConsolidate, IsOblivious) {
  auto result = obliv::check_oblivious(
      test::params(4, 512), 256, obliv::canonical_inputs(12),
      [](Client& c, const ExtArray& a) {
        multiway_consolidate(c, a, 3, color3);
      });
  EXPECT_TRUE(result.oblivious) << result.diagnosis;
}

TEST(ShuffleBlocks, PermutesBlocksIntact) {
  Client client(test::params(4, 64));
  const std::uint64_t n = 32;
  ExtArray a = client.alloc_blocks(n, Client::Init::kUninit);
  std::vector<Record> flat(n * 4);
  for (std::uint64_t b = 0; b < n; ++b)
    for (std::size_t r = 0; r < 4; ++r) flat[b * 4 + r] = {b, r};
  client.poke(a, flat);
  rng::Xoshiro coins(5);
  shuffle_blocks(client, a, coins);
  auto out = client.peek(a);
  std::set<std::uint64_t> seen;
  for (std::uint64_t b = 0; b < n; ++b) {
    const std::uint64_t src = out[b * 4].key;
    EXPECT_TRUE(seen.insert(src).second);
    for (std::size_t r = 0; r < 4; ++r) {
      EXPECT_EQ(out[b * 4 + r].key, src);   // block stayed intact
      EXPECT_EQ(out[b * 4 + r].value, r);
    }
  }
  EXPECT_EQ(seen.size(), n);
}

TEST(ShuffleBlocks, FixedIoCost) {
  Client client(test::params(4, 64));
  ExtArray a = client.alloc_blocks(32, Client::Init::kEmpty);
  client.reset_stats();
  rng::Xoshiro coins(5);
  shuffle_blocks(client, a, coins);
  // 31 swap steps, 4 I/Os each.
  EXPECT_EQ(client.stats().total(), 31u * 4);
}

TEST(Deal, DistributesByColorWithPaddedWrites) {
  Client client(test::params(4, 512));
  const std::uint64_t n = 60;
  ExtArray a = client.alloc_blocks(n, Client::Init::kUninit);
  // Monochromatic blocks: block b has color b % 3 (key encodes color).
  std::vector<Record> flat(n * 4);
  for (std::uint64_t b = 0; b < n; ++b)
    for (std::size_t r = 0; r < 4; ++r) flat[b * 4 + r] = {b % 3 + 3 * b * 10, b};
  client.poke(a, flat);

  DealResult res = deal_blocks(client, a, 3,
                               [](const Record& r) { return static_cast<unsigned>(r.key % 3); });
  ASSERT_TRUE(res.status.ok()) << res.status.message();
  ASSERT_EQ(res.colors.size(), 3u);
  EXPECT_EQ(res.overflow_drops, 0u);

  // Every real block landed in its color array; totals conserved.
  std::uint64_t total_real = 0;
  for (unsigned c = 0; c < 3; ++c) {
    auto out = client.peek(res.colors[c]);
    for (std::size_t b = 0; b * 4 < out.size(); ++b) {
      if (!out[b * 4].is_empty()) {
        EXPECT_EQ(out[b * 4].key % 3, c) << "wrong color bucket";
        ++total_real;
      }
    }
  }
  EXPECT_EQ(total_real, n);
}

TEST(Deal, UniformArraySizesAndQuota) {
  Client client(test::params(4, 1024));
  ExtArray a = client.alloc_blocks(100, Client::Init::kEmpty);
  DealResult res = deal_blocks(client, a, 5,
                               [](const Record&) -> unsigned { return 0; });
  for (unsigned c = 1; c < 5; ++c)
    EXPECT_EQ(res.colors[c].num_blocks(), res.colors[0].num_blocks());
  EXPECT_GT(res.quota, 0u);
  EXPECT_GE(res.batch_blocks, 5u);
}

TEST(Deal, OverflowDetectedOnAdversarialConcentration) {
  // All blocks one color with a tiny forced quota: drops must be reported.
  Client client(test::params(4, 512));
  const std::uint64_t n = 64;
  ExtArray a = client.alloc_blocks(n, Client::Init::kUninit);
  std::vector<Record> flat(n * 4);
  for (std::uint64_t b = 0; b < n; ++b)
    for (std::size_t r = 0; r < 4; ++r) flat[b * 4 + r] = {1, b};
  client.poke(a, flat);
  DealOptions opts;
  opts.batch_blocks = 16;
  opts.quota = 2;  // far below 16 same-colored blocks per batch
  DealResult res = deal_blocks(client, a, 3,
                               [](const Record&) -> unsigned { return 1; }, opts);
  EXPECT_FALSE(res.status.ok());
  EXPECT_GT(res.overflow_drops, 0u);
}

TEST(Deal, ShuffleAvoidsHotSpotOverflow) {
  // Lemma 18's point: consolidated (clustered) colors overflow per-batch
  // quotas without the shuffle; with the shuffle they fit w.h.p.
  const std::uint64_t n = 256;
  auto build = [&](bool shuffled, std::uint64_t* drops) {
    Client client(test::params(4, 256));
    ExtArray a = client.alloc_blocks(n, Client::Init::kUninit);
    // Clustered colors: first half color 0, second half color 1.
    std::vector<Record> flat(n * 4);
    for (std::uint64_t b = 0; b < n; ++b)
      for (std::size_t r = 0; r < 4; ++r)
        flat[b * 4 + r] = {b < n / 2 ? 0ull : 1ull, b};
    client.poke(a, flat);
    if (shuffled) {
      rng::Xoshiro coins(3);
      shuffle_blocks(client, a, coins);
    }
    DealOptions opts;
    opts.batch_blocks = 32;
    opts.quota = 26;  // mean 16 + generous margin, but << 32
    DealResult res = deal_blocks(client, a, 2,
                                 [](const Record& r) { return static_cast<unsigned>(r.key); },
                                 opts);
    *drops = res.overflow_drops;
  };
  std::uint64_t drops_clustered = 0, drops_shuffled = 0;
  build(false, &drops_clustered);
  build(true, &drops_shuffled);
  EXPECT_GT(drops_clustered, 0u) << "clustered input should overflow the quota";
  EXPECT_EQ(drops_shuffled, 0u) << "shuffle-and-deal should break the hot spot";
}

TEST(Deal, IsOblivious) {
  auto result = obliv::check_oblivious(
      test::params(4, 512), 256, obliv::canonical_inputs(13),
      [](Client& c, const ExtArray& a) {
        deal_blocks(c, a, 3, [](const Record& r) {
          return static_cast<unsigned>(r.key % 3);
        });
      });
  EXPECT_TRUE(result.oblivious) << result.diagnosis;
}

}  // namespace
}  // namespace oem::core
