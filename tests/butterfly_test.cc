#include <gtest/gtest.h>

#include <vector>

#include "core/butterfly.h"
#include "obliv/trace_check.h"
#include "test_util.h"
#include "util/math.h"

namespace oem::core {
namespace {

/// Fill array: block b distinguished iff (b % period == phase); block content
/// is a recognizable pattern keyed by b.
std::vector<Record> patterned(std::uint64_t n_blocks, std::size_t B,
                              std::uint64_t period, std::uint64_t phase) {
  std::vector<Record> flat(n_blocks * B);
  for (std::uint64_t b = 0; b < n_blocks; ++b) {
    if (b % period == phase) {
      for (std::size_t r = 0; r < B; ++r) flat[b * B + r] = {b * 1000 + r, b};
    }
  }
  return flat;
}

struct CompactCase {
  std::size_t B;
  std::uint64_t M;
  std::uint64_t n_blocks;
  std::uint64_t period;
};

class ButterflyTest : public ::testing::TestWithParam<CompactCase> {};

TEST_P(ButterflyTest, CompactsTightOrderPreserving) {
  const auto& p = GetParam();
  Client client(test::params(p.B, p.M));
  ExtArray a = client.alloc_blocks(p.n_blocks, Client::Init::kUninit);
  client.poke(a, patterned(p.n_blocks, p.B, p.period, 1 % p.period));

  TightCompactResult res = tight_compact_blocks(client, a, block_nonempty_pred());

  std::vector<std::uint64_t> expect;
  for (std::uint64_t b = 0; b < p.n_blocks; ++b)
    if (b % p.period == 1 % p.period) expect.push_back(b);
  EXPECT_EQ(res.occupied, expect.size());

  auto out = client.peek(res.out);
  for (std::size_t i = 0; i < expect.size(); ++i) {
    for (std::size_t r = 0; r < p.B; ++r) {
      EXPECT_EQ(out[i * p.B + r].key, expect[i] * 1000 + r)
          << "compacted block " << i;
    }
  }
  for (std::size_t i = expect.size() * p.B; i < out.size(); ++i)
    EXPECT_TRUE(out[i].is_empty());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ButterflyTest,
    ::testing::Values(CompactCase{4, 64, 16, 2},    // half occupied
                      CompactCase{4, 64, 16, 16},   // single block
                      CompactCase{4, 64, 17, 3},    // non-power-of-two n
                      CompactCase{4, 64, 1, 1},     // n = 1
                      CompactCase{4, 64, 2, 2},
                      CompactCase{8, 128, 100, 7},
                      CompactCase{4, 64, 256, 5},
                      CompactCase{2, 32, 64, 2},    // minimal m = 16
                      CompactCase{4, 4096, 512, 3}, // big cache, few superlevels
                      CompactCase{4, 64, 512, 3})); // small cache, many superlevels

TEST(Butterfly, MatchesSortReference) {
  // Differential: butterfly output == Lemma-2-based reference on random
  // occupancy patterns.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Client c1(test::params(4, 64)), c2(test::params(4, 64));
    const std::uint64_t n = 48;
    rng::Xoshiro g(seed);
    std::vector<Record> flat(n * 4);
    for (std::uint64_t b = 0; b < n; ++b)
      if (g.bernoulli(0.4))
        for (std::size_t r = 0; r < 4; ++r) flat[b * 4 + r] = {b * 10 + r, b};

    ExtArray a1 = c1.alloc_blocks(n, Client::Init::kUninit);
    c1.poke(a1, flat);
    ExtArray a2 = c2.alloc_blocks(n, Client::Init::kUninit);
    c2.poke(a2, flat);

    auto r1 = tight_compact_blocks(c1, a1, block_nonempty_pred());
    auto r2 = tight_compact_by_sort(c2, a2, block_nonempty_pred());
    EXPECT_EQ(r1.occupied, r2.occupied);
    EXPECT_EQ(c1.peek(r1.out), c2.peek(r2.out)) << "seed=" << seed;
  }
}

TEST(Butterfly, Figure1Example) {
  // The paper's Figure 1: 7 occupied cells with distance labels
  // 2 3 3 6 8 8 9 among 16 cells.  Occupied positions = label + rank:
  // label d at rank i means position = d + i for the compacted order.
  // Positions: 2,4,5,9,12,13,15.  After compaction they sit at 0..6.
  Client client(test::params(2, 64));
  const std::uint64_t n = 16;
  std::vector<std::uint64_t> occupied = {2, 4, 5, 9, 12, 13, 15};
  std::vector<Record> flat(n * 2);
  for (std::uint64_t b : occupied) {
    flat[b * 2] = {b, b};
    flat[b * 2 + 1] = {b, b};
  }
  ExtArray a = client.alloc_blocks(n, Client::Init::kUninit);
  client.poke(a, flat);
  TightCompactResult res = tight_compact_blocks(client, a, block_nonempty_pred());
  EXPECT_EQ(res.occupied, 7u);
  auto out = client.peek(res.out);
  for (std::size_t i = 0; i < 7; ++i)
    EXPECT_EQ(out[i * 2].key, occupied[i]) << "slot " << i;
}

TEST(Butterfly, ExpansionInvertsCompaction) {
  Client client(test::params(4, 64));
  const std::uint64_t n = 32;
  std::vector<std::uint64_t> targets = {1, 4, 5, 11, 17, 23, 24, 30};
  std::vector<Record> flat(targets.size() * 4);
  for (std::size_t i = 0; i < targets.size(); ++i)
    for (std::size_t r = 0; r < 4; ++r) flat[i * 4 + r] = {i * 100 + r, i};
  ExtArray a = client.alloc_blocks(targets.size(), Client::Init::kUninit);
  client.poke(a, flat);

  ExtArray out = expand_blocks(client, a, targets.size(), n,
                               [&](std::uint64_t i) { return targets[i]; });
  auto got = client.peek(out);
  std::set<std::uint64_t> tset(targets.begin(), targets.end());
  for (std::uint64_t b = 0; b < n; ++b) {
    if (tset.count(b)) {
      const std::size_t i =
          std::distance(targets.begin(),
                        std::find(targets.begin(), targets.end(), b));
      EXPECT_EQ(got[b * 4].key, i * 100) << "target " << b;
    } else {
      EXPECT_TRUE(got[b * 4].is_empty()) << "block " << b;
    }
  }
}

TEST(Butterfly, ExpandThenCompactIsIdentity) {
  Client client(test::params(4, 128));
  const std::uint64_t count = 10, out_n = 64;
  auto flat = test::random_records(count * 4, 3);
  ExtArray a = client.alloc_blocks(count, Client::Init::kUninit);
  client.poke(a, flat);
  ExtArray spread = expand_blocks(client, a, count, out_n,
                                  [](std::uint64_t i) { return i * 6 + 1; });
  TightCompactResult back = tight_compact_blocks(client, spread, block_nonempty_pred());
  EXPECT_EQ(back.occupied, count);
  auto got = client.peek(back.out);
  got.resize(count * 4);
  EXPECT_EQ(got, flat);
}

TEST(Butterfly, IoMatchesLogOverLogShape) {
  // Measured I/O per block should scale like log(n)/log(m): for fixed n,
  // larger m => fewer super-levels => fewer I/Os.
  auto measure = [](std::uint64_t M) {
    Client client(test::params(4, M));
    const std::uint64_t n = 256;
    ExtArray a = client.alloc_blocks(n, Client::Init::kUninit);
    client.poke(a, patterned(n, 4, 3, 0));
    client.reset_stats();
    tight_compact_blocks(client, a, block_nonempty_pred());
    return client.stats().total();
  };
  const std::uint64_t small_m = measure(64);    // m = 16
  const std::uint64_t big_m = measure(4096);    // m = 1024
  EXPECT_LT(big_m, small_m);
  // And it should be far below the naive n log n (no windowing) cost.
  EXPECT_LT(small_m, 10 * butterfly_predicted_ios(256, 16));
}

TEST(Butterfly, IsOblivious) {
  auto result = obliv::check_oblivious(
      test::params(4, 64), 256, obliv::canonical_inputs(6),
      [](Client& c, const ExtArray& a) {
        tight_compact_blocks(c, a, [](std::uint64_t, const BlockBuf& blk) {
          return !blk[0].is_empty() && blk[0].key % 2 == 0;
        });
      });
  EXPECT_TRUE(result.oblivious) << result.diagnosis;
}

TEST(Butterfly, ExpansionIsOblivious) {
  // Targets differ per input (data-dependent labels), but the trace must
  // depend only on (count, out_n).
  auto result = obliv::check_oblivious(
      test::params(4, 64), 64, obliv::canonical_inputs(7),
      [](Client& c, const ExtArray& a) {
        const std::uint64_t count = a.num_blocks();
        BlockBuf blk;
        c.read_block(a, 0, blk);
        const std::uint64_t stretch = 1 + blk[0].key % 3;  // data-dependent!
        expand_blocks(c, a, count, count * 4, [&](std::uint64_t i) {
          return i * stretch + (i >= count / 2 ? count * 3 - count * stretch : 0) +
                 (stretch == 1 ? 0 : 1);
        });
      });
  EXPECT_TRUE(result.oblivious) << result.diagnosis;
}

}  // namespace
}  // namespace oem::core
