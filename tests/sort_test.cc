#include <gtest/gtest.h>

#include <algorithm>

#include "core/oblivious_sort.h"
#include "obliv/trace_check.h"
#include "sortnet/external_sort.h"
#include "test_util.h"

namespace oem::core {
namespace {

struct SortCase {
  std::uint64_t N;
  std::size_t B;
  std::uint64_t M;
};

class ObliviousSortTest : public ::testing::TestWithParam<SortCase> {};

TEST_P(ObliviousSortTest, SortsRandomInput) {
  const auto& p = GetParam();
  Client client(test::params(p.B, p.M));
  auto v = test::random_records(p.N, 11);
  ExtArray a = client.alloc(p.N, Client::Init::kUninit);
  client.poke(a, v);

  ObliviousSortResult res = oblivious_sort(client, a, /*seed=*/5);
  ASSERT_TRUE(res.status.ok()) << res.status.message();
  auto out = client.peek(a);
  EXPECT_TRUE(test::same_multiset(out, v)) << "records lost or duplicated";
  EXPECT_TRUE(test::keys_nondecreasing(test::non_empty(out)));
  // Tight compaction: non-empty prefix.
  bool seen_empty = false;
  for (const Record& r : out) {
    if (r.is_empty()) seen_empty = true;
    else EXPECT_FALSE(seen_empty);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ObliviousSortTest,
    ::testing::Values(SortCase{256, 4, 64},        // base: fits-ish in cache
                      SortCase{4096, 4, 64},       // dense regime (Lemma 2)
                      SortCase{8192, 4, 64},
                      SortCase{40000, 4, 4 * 256},  // recursive pipeline, q=4
                      SortCase{65536, 8, 8 * 256},
                      SortCase{30000, 4, 4 * 300}));

TEST(ObliviousSort, RecursivePipelineEngages) {
  // Parameters chosen so n > m^4 and q >= 2: the full quantile/shuffle/deal/
  // loose-compaction/recursion/sweep pipeline must run (not a base case).
  Client client(test::params(4, 4 * 256));  // m = 256, q = 4
  const std::uint64_t N = 4 * 70000;        // n = 70000 > m^4? no -- but > 4m
  auto v = test::random_records(N, 3);
  ExtArray a = client.alloc(N, Client::Init::kUninit);
  client.poke(a, v);
  ObliviousSortOptions opts;
  opts.min_recursive_blocks = 1024;  // force recursion below the dense guard
  // Knock out the dense-regime shortcut by treating m^4 as satisfied:
  // (the public branch uses m^4 >= n; with m=256 that's huge, so instead we
  // exercise the pipeline via the padded entry point and a smaller m.)
  Client small(test::params(4, 4 * 16));  // m = 16, m^4 = 65536 < 70000
  ExtArray b = small.alloc(N, Client::Init::kUninit);
  small.poke(b, v);
  ExtArray out;
  ObliviousSortResult res = oblivious_sort_padded(small, b, &out, 7, opts);
  ASSERT_TRUE(res.status.ok()) << res.status.message();
  EXPECT_GT(res.stats.nodes, 1u) << "pipeline did not recurse";
  auto padded = small.peek(out);
  EXPECT_TRUE(test::same_multiset(padded, v));
  EXPECT_TRUE(test::keys_nondecreasing(test::non_empty(padded)));
}

TEST(ObliviousSort, AllEqualKeysBalanceViaTieSpreading) {
  Client client(test::params(4, 4 * 16));
  const std::uint64_t N = 4 * 70000;
  std::vector<Record> v(N);
  for (std::uint64_t i = 0; i < N; ++i) v[i] = {42, i};  // one key, distinct values
  ExtArray a = client.alloc(N, Client::Init::kUninit);
  client.poke(a, v);
  ObliviousSortOptions opts;
  opts.min_recursive_blocks = 1024;
  ExtArray out;
  ObliviousSortResult res = oblivious_sort_padded(client, a, &out, 9, opts);
  ASSERT_TRUE(res.status.ok()) << res.status.message();
  auto padded = client.peek(out);
  EXPECT_TRUE(test::same_multiset(padded, v));
  EXPECT_TRUE(test::keys_nondecreasing(test::non_empty(padded)));
}

TEST(ObliviousSort, PaddedInputWithEmptyCells) {
  Client client(test::params(4, 64));
  std::vector<Record> v(1024);
  for (std::uint64_t i = 0; i < 1024; i += 3) v[i] = {1024 - i, i};
  ExtArray a = client.alloc(1024, Client::Init::kUninit);
  client.poke(a, v);
  ObliviousSortResult res = oblivious_sort(client, a, 3);
  ASSERT_TRUE(res.status.ok());
  auto out = client.peek(a);
  EXPECT_TRUE(test::same_multiset(out, v));
  EXPECT_TRUE(test::padded_sorted(out));
}

TEST(ObliviousSort, SucceedsAcrossSeeds) {
  Client client(test::params(4, 4 * 16));
  const std::uint64_t N = 4 * 20000;
  auto v = test::random_records(N, 23);
  ExtArray a = client.alloc(N, Client::Init::kUninit);
  ObliviousSortOptions opts;
  opts.min_recursive_blocks = 512;
  int failures = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    client.poke(a, v);
    ExtArray out;
    auto res = oblivious_sort_padded(client, a, &out, seed, opts);
    if (!res.status.ok()) {
      ++failures;
      continue;
    }
    auto padded = client.peek(out);
    EXPECT_TRUE(test::same_multiset(padded, v)) << "seed " << seed;
    EXPECT_TRUE(test::keys_nondecreasing(test::non_empty(padded))) << "seed " << seed;
  }
  EXPECT_LE(failures, 1);
}

TEST(ObliviousSort, IsOblivious) {
  ObliviousSortOptions opts;
  opts.min_recursive_blocks = 256;
  auto result = obliv::check_oblivious(
      test::params(4, 4 * 16), 4 * 20000, obliv::canonical_inputs(14),
      [&](Client& c, const ExtArray& a) { (void)oblivious_sort(c, a, 5, opts); });
  EXPECT_TRUE(result.oblivious) << result.diagnosis;
}

TEST(ObliviousSort, GrowthRateBelowDeterministic) {
  // E8's headline shape: per-block I/O of the randomized sort grows like
  // log_m(n) (one extra recursion level per q-fold size increase) while the
  // deterministic Lemma-2 sort grows like log^2(n/m).  At laboratory scale
  // absolute constants favor the deterministic sort (the paper's own dense
  // rule says to use it there); the reproducible claim is the RELATIVE
  // GROWTH: quadrupling n must inflate the randomized sort's per-block I/O
  // by a smaller factor than the deterministic one's.
  const std::size_t B = 8;
  const std::uint64_t M = 8 * 256;  // m = 256 -> q = 4
  ObliviousSortOptions opts;
  opts.paper_dense_rule = false;
  opts.sparse_quantiles = true;
  opts.quantiles.paper_intervals = false;
  opts.min_recursive_blocks = 2048;

  std::vector<double> det_pb, rand_pb;
  for (std::uint64_t n_blocks : {4096ull, 16384ull}) {
    const std::uint64_t N = n_blocks * B;
    det_pb.push_back(
        static_cast<double>(sortnet::ext_sort_predicted_ios(n_blocks, 256)) /
        static_cast<double>(n_blocks));

    Client c(test::params(B, M));
    ExtArray a = c.alloc(N, Client::Init::kUninit);
    c.poke(a, test::random_records(N, 2));
    c.reset_stats();
    ExtArray out;
    auto res = oblivious_sort_padded(c, a, &out, 5, opts);
    ASSERT_TRUE(res.status.ok()) << res.status.message();
    rand_pb.push_back(static_cast<double>(c.stats().total()) /
                      static_cast<double>(n_blocks));
  }
  const double det_growth = det_pb[1] / det_pb[0];
  const double rand_growth = rand_pb[1] / rand_pb[0];
  EXPECT_LT(rand_growth, det_growth)
      << "rand " << rand_pb[0] << "->" << rand_pb[1] << " det " << det_pb[0]
      << "->" << det_pb[1];
}

TEST(ObliviousSort, StatsPopulated) {
  Client client(test::params(4, 4 * 16));
  ExtArray a = client.alloc(4 * 30000, Client::Init::kUninit);
  client.poke(a, test::random_records(4 * 30000, 1));
  ObliviousSortOptions opts;
  opts.min_recursive_blocks = 512;
  ExtArray out;
  auto res = oblivious_sort_padded(client, a, &out, 2, opts);
  EXPECT_GE(res.stats.nodes, 1u);
  EXPECT_GE(res.stats.det_sort_nodes, 1u);
}

}  // namespace
}  // namespace oem::core
