#include <gtest/gtest.h>

#include <sstream>

#include "util/flags.h"
#include "util/math.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table.h"

namespace oem {
namespace {

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
  EXPECT_EQ(ceil_div(8, 4), 2u);
}

TEST(Math, Logs) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(Math, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1 << 20), std::uint64_t{1} << 20);
  EXPECT_EQ(next_pow2((1 << 20) + 1), std::uint64_t{1} << 21);
}

TEST(Math, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(65));
}

TEST(Math, IRoot) {
  EXPECT_EQ(iroot(0, 2), 0u);
  EXPECT_EQ(iroot(15, 2), 3u);
  EXPECT_EQ(iroot(16, 2), 4u);
  EXPECT_EQ(iroot(255, 4), 3u);
  EXPECT_EQ(iroot(256, 4), 4u);
  EXPECT_EQ(iroot(1'000'000, 2), 1000u);
}

TEST(Math, IPowFrac) {
  EXPECT_EQ(ipow_frac(16, 3, 4), 8u);    // 16^{3/4}
  EXPECT_EQ(ipow_frac(256, 1, 2), 16u);  // sqrt
  EXPECT_EQ(ipow_frac(256, 3, 4), 64u);
}

TEST(Math, LogStar) {
  EXPECT_EQ(log_star(1.0), 0u);
  EXPECT_EQ(log_star(2.0), 1u);
  EXPECT_EQ(log_star(4.0), 2u);
  EXPECT_EQ(log_star(16.0), 3u);
  EXPECT_EQ(log_star(65536.0), 4u);
}

TEST(Math, LogBase) {
  EXPECT_DOUBLE_EQ(log_base(8.0, 2.0), 3.0);
  EXPECT_GE(log_base(1.0, 16.0), 1.0);  // clamped
  EXPECT_NEAR(log_base(4096.0, 16.0), 3.0, 1e-9);
}

TEST(Status, Basics) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  Status bad = Status::WhpFailure("boom");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kWhpFailure);
  EXPECT_EQ(bad.message(), "boom");
}

TEST(Status, UpdateKeepsFirstError) {
  Status s = Status::Ok();
  s.Update(Status::WhpFailure("first"));
  s.Update(Status::InvalidArgument("second"));
  EXPECT_EQ(s.message(), "first");
  EXPECT_EQ(s.code(), StatusCode::kWhpFailure);
}

TEST(Stats, Summary) {
  Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, 1.29099, 1e-4);
}

TEST(Stats, LinearFitExact) {
  LinearFit f = fit_linear({1, 2, 3, 4}, {3, 5, 7, 9});  // y = 1 + 2x
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
  EXPECT_NEAR(f.intercept, 1.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(Stats, ChiSquareUniform) {
  EXPECT_DOUBLE_EQ(chi_square_uniform({10, 10, 10, 10}), 0.0);
  EXPECT_GT(chi_square_uniform({40, 0, 0, 0}), 100.0);
}

TEST(Stats, ChernoffBoundsMonotone) {
  // Larger gamma => smaller tail.
  const double a = chernoff_upper_tail(10.0, 8.0);
  const double b = chernoff_upper_tail(10.0, 16.0);
  EXPECT_LT(b, a);
  EXPECT_LT(a, 1.0);
}

TEST(Stats, GeometricSumTailCases) {
  // All five Lemma 23 cases produce sub-1 bounds and shrink with t.
  const double p = 0.1, n = 100.0, alpha = 10.0;
  double prev = 1.0;
  for (double t : {alpha / 4, alpha / 2, alpha, 2 * alpha, 3 * alpha}) {
    const double b = geometric_sum_tail(n, p, t);
    EXPECT_LT(b, 1.0);
    EXPECT_LE(b, prev + 1e-12);
    prev = b;
  }
}

TEST(Table, Renders) {
  Table t({"n", "ios"});
  t.add_row({"8", "123"});
  t.add_row({"16", "456"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| n  | ios |"), std::string::npos);
  EXPECT_NE(out.find("| 16 | 456 |"), std::string::npos);
}

TEST(Flags, ParseTypes) {
  const char* argv[] = {"prog", "--n=42", "--ratio=2.5", "--name=abc", "--flag"};
  Flags f(5, const_cast<char**>(argv));
  EXPECT_EQ(f.get_int("n", 0), 42);
  EXPECT_DOUBLE_EQ(f.get_double("ratio", 0.0), 2.5);
  EXPECT_EQ(f.get("name", ""), "abc");
  EXPECT_TRUE(f.get_bool("flag", false));
  EXPECT_EQ(f.get_int("missing", 7), 7);
  EXPECT_TRUE(f.validate().ok()) << f.validate();
}

TEST(Flags, UnknownFlagFailsValidation) {
  const char* argv[] = {"prog", "--records=64", "--record=128"};  // typo
  Flags f(3, const_cast<char**>(argv));
  EXPECT_EQ(f.get_u64("records", 0), 64u);
  const Status st = f.validate();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("--record"), std::string::npos);
  // ...unless the binary declares it as known.
  EXPECT_TRUE(f.validate({"record"}).ok());
}

TEST(Flags, MalformedArgumentsFailValidation) {
  const char* argv[] = {"prog", "-records=64", "positional", "--=3"};
  Flags f(4, const_cast<char**>(argv));
  const Status st = f.validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("-records=64"), std::string::npos);
  EXPECT_NE(st.message().find("positional"), std::string::npos);
}

TEST(Flags, MalformedValuesFailValidation) {
  const char* argv[] = {"prog", "--n=twelve", "--ratio=fast", "--on=maybe"};
  Flags f(4, const_cast<char**>(argv));
  EXPECT_EQ(f.get_u64("n", 5), 0u);         // reported, returns parse result
  EXPECT_EQ(f.get_double("ratio", 1.0), 0.0);
  EXPECT_FALSE(f.get_bool("on", false));    // bad bool keeps the default
  const Status st = f.validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("--n=twelve"), std::string::npos);
  EXPECT_NE(st.message().find("--ratio=fast"), std::string::npos);
  EXPECT_NE(st.message().find("--on=maybe"), std::string::npos);
}

}  // namespace
}  // namespace oem
