#include <gtest/gtest.h>

#include "oram/sqrt_oram.h"
#include "test_util.h"

namespace oem::oram {
namespace {

TEST(SqrtOram, ReturnsCorrectValues) {
  Client client(test::params(4, 2048));
  SqrtOram oram(client, 256, ShuffleKind::kDeterministic, 7);
  rng::Xoshiro g(3);
  for (int i = 0; i < 600; ++i) {  // spans several epochs
    const std::uint64_t idx = g.below(256);
    EXPECT_EQ(oram.access(idx), oram.expected_value(idx)) << "access " << i;
  }
  EXPECT_TRUE(oram.status().ok());
  EXPECT_GE(oram.stats().reshuffles, 600 / oram.epoch_length());
}

TEST(SqrtOram, RepeatedAccessSameIndex) {
  // Repeats within an epoch must hit the stash + a dummy, still correct.
  Client client(test::params(4, 2048));
  SqrtOram oram(client, 64, ShuffleKind::kDeterministic, 9);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(oram.access(17), oram.expected_value(17));
}

TEST(SqrtOram, RandomizedShuffleAlsoCorrect) {
  Client client(test::params(4, 4 * 64));
  SqrtOram oram(client, 256, ShuffleKind::kRandomized, 11);
  rng::Xoshiro g(5);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t idx = g.below(256);
    if (oram.status().ok()) {
      EXPECT_EQ(oram.access(idx), oram.expected_value(idx));
    }
  }
}

TEST(SqrtOram, AccessPositionsAreFreshPerEpoch) {
  // Within one epoch, all probed main positions must be distinct (each
  // position is touched at most once -- the classic sqrt-ORAM privacy
  // argument).
  Client client(test::params(4, 2048));
  client.device().trace().set_record_events(true);
  SqrtOram oram(client, 225, ShuffleKind::kDeterministic, 13);
  client.device().trace().reset();
  // All accesses to the same index: worst case for freshness.  Stop one
  // short of the epoch so the reshuffle's sort (which legitimately
  // re-touches blocks) stays out of the trace.
  const std::uint64_t epoch = oram.epoch_length();
  for (std::uint64_t i = 0; i + 1 < epoch; ++i) oram.access(3);
  // Count how many times each *main-array* block was probed outside scans.
  // Full-array scans (stash/reshuffle) touch blocks uniformly; the probe
  // pattern adds at most one extra touch per block if positions are fresh.
  std::map<std::uint64_t, int> touches;
  for (const auto& ev : client.device().trace().events())
    if (ev.op == IoOp::kRead) touches[ev.block]++;
  int max_touch = 0;
  for (auto& [blk, cnt] : touches) max_touch = std::max(max_touch, cnt);
  // Stash blocks are re-scanned every access (epoch-1 touches) plus the
  // read half of the append's read-modify-write (up to B per block); main
  // blocks are touched only by fresh probes.
  EXPECT_LE(max_touch, static_cast<int>(epoch) + 4 + 2);
}

TEST(SqrtOram, DeterministicShuffleCheaperPerAccessThanNaiveScan) {
  // Amortized I/O per access should be far below N/B (the trivial oblivious
  // baseline of scanning everything per access).
  Client client(test::params(4, 2048));
  const std::uint64_t N = 1024;
  SqrtOram oram(client, N, ShuffleKind::kDeterministic, 3);
  rng::Xoshiro g(7);
  const std::uint64_t accesses = 4 * oram.epoch_length();
  for (std::uint64_t i = 0; i < accesses; ++i) oram.access(g.below(N));
  const double per_access =
      static_cast<double>(oram.stats().access_ios + oram.stats().reshuffle_ios) /
      static_cast<double>(accesses);
  EXPECT_LT(per_access, static_cast<double>(N / 4));  // N/B = 256
}

TEST(SqrtOram, ShuffleKindChangesReshuffleCostOnly) {
  auto run = [](ShuffleKind kind) {
    Client client(test::params(4, 4 * 64));
    SqrtOram oram(client, 1024, kind, 3);
    rng::Xoshiro g(7);
    for (std::uint64_t i = 0; i < 2 * oram.epoch_length(); ++i)
      oram.access(g.below(1024));
    return oram.stats();
  };
  const SqrtOramStats det = run(ShuffleKind::kDeterministic);
  const SqrtOramStats rnd = run(ShuffleKind::kRandomized);
  EXPECT_EQ(det.access_ios, rnd.access_ios) << "access protocol should be identical";
  EXPECT_NE(det.reshuffle_ios, rnd.reshuffle_ios);
}

}  // namespace
}  // namespace oem::oram
