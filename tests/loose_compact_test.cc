#include <gtest/gtest.h>

#include <set>

#include "core/loose_compact.h"
#include "core/logstar_compact.h"
#include "obliv/trace_check.h"
#include "test_util.h"

namespace oem::core {
namespace {

/// Marks block b distinguished with content {b*1000+r, b} when selected.
std::vector<Record> sparse_blocks(std::uint64_t n_blocks, std::size_t B,
                                  double density, std::uint64_t seed,
                                  std::set<std::uint64_t>* chosen) {
  rng::Xoshiro g(seed);
  std::vector<Record> flat(n_blocks * B);
  for (std::uint64_t b = 0; b < n_blocks; ++b) {
    if (g.bernoulli(density)) {
      chosen->insert(b);
      for (std::size_t r = 0; r < B; ++r) flat[b * B + r] = {b * 1000 + r, b};
    }
  }
  return flat;
}

/// Collects the distinguished block keys found in an output array.
std::set<std::uint64_t> found_blocks(const std::vector<Record>& out, std::size_t B) {
  std::set<std::uint64_t> s;
  for (std::size_t b = 0; b * B < out.size(); ++b) {
    const Record& r0 = out[b * B];
    if (!r0.is_empty()) s.insert(r0.key / 1000);
  }
  return s;
}

struct LooseCase {
  std::size_t B;
  std::uint64_t M;
  std::uint64_t n_blocks;
  double density;
};

class LooseCompactTest : public ::testing::TestWithParam<LooseCase> {};

TEST_P(LooseCompactTest, AllDistinguishedBlocksSurvive) {
  const auto& p = GetParam();
  Client client(test::params(p.B, p.M));
  std::set<std::uint64_t> chosen;
  std::vector<Record> flat =
      sparse_blocks(p.n_blocks, p.B, p.density, 42, &chosen);
  // Capacity bound: generous but < n/4.
  const std::uint64_t r_cap =
      std::min<std::uint64_t>(p.n_blocks / 4 - 1,
                              chosen.size() + chosen.size() / 2 + 4);
  ASSERT_GE(r_cap, chosen.size());

  ExtArray a = client.alloc_blocks(p.n_blocks, Client::Init::kUninit);
  client.poke(a, flat);
  LooseCompactResult res =
      loose_compact_blocks(client, a, r_cap, block_nonempty_pred(), 7);

  ASSERT_TRUE(res.status.ok()) << res.status.message();
  EXPECT_EQ(res.distinguished, chosen.size());
  EXPECT_EQ(res.out.num_blocks(), 5 * r_cap);

  auto out = client.peek(res.out);
  EXPECT_EQ(found_blocks(out, p.B), chosen) << "blocks lost or fabricated";
  // Content integrity of one surviving block.
  for (std::size_t b = 0; b * p.B < out.size(); ++b) {
    if (!out[b * p.B].is_empty()) {
      const std::uint64_t src = out[b * p.B].key / 1000;
      for (std::size_t r = 0; r < p.B; ++r)
        EXPECT_EQ(out[b * p.B + r].key, src * 1000 + r);
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LooseCompactTest,
    ::testing::Values(LooseCase{4, 512, 128, 0.15}, LooseCase{4, 512, 256, 0.2},
                      LooseCase{8, 1024, 512, 0.1}, LooseCase{4, 512, 64, 0.05},
                      LooseCase{4, 2048, 1024, 0.2},
                      LooseCase{16, 4096, 256, 0.12}));

TEST(LooseCompact, RejectsOverdenseInput) {
  Client client(test::params(4, 512));
  ExtArray a = client.alloc_blocks(16, Client::Init::kEmpty);
  LooseCompactResult res =
      loose_compact_blocks(client, a, /*r_capacity=*/8, block_nonempty_pred(), 1);
  EXPECT_EQ(res.status.code(), StatusCode::kInvalidArgument);
}

TEST(LooseCompact, ReportsOverflowWhenCountExceedsCapacity) {
  Client client(test::params(4, 512));
  const std::uint64_t n = 128;
  std::set<std::uint64_t> chosen;
  auto flat = sparse_blocks(n, 4, 0.24, 3, &chosen);
  ASSERT_GT(chosen.size(), 8u);
  ExtArray a = client.alloc_blocks(n, Client::Init::kUninit);
  client.poke(a, flat);
  // Deliberately undersized capacity.
  LooseCompactResult res =
      loose_compact_blocks(client, a, 8, block_nonempty_pred(), 1);
  EXPECT_FALSE(res.status.ok());
}

TEST(LooseCompact, LinearIoShape) {
  // I/Os per input block should stay roughly flat as n grows (Theorem 8's
  // O(N/B) claim).  Density and capacity scale proportionally.
  std::vector<double> per_block;
  for (std::uint64_t n : {256ull, 1024ull, 4096ull}) {
    Client client(test::params(4, 1024));
    std::set<std::uint64_t> chosen;
    auto flat = sparse_blocks(n, 4, 0.1, 5, &chosen);
    ExtArray a = client.alloc_blocks(n, Client::Init::kUninit);
    client.poke(a, flat);
    client.reset_stats();
    loose_compact_blocks(client, a, n / 5, block_nonempty_pred(), 5);
    per_block.push_back(static_cast<double>(client.stats().total()) /
                        static_cast<double>(n));
  }
  // 16x more data => per-block cost within 1.6x (log factors would give ~4x).
  EXPECT_LT(per_block[2], per_block[0] * 1.6)
      << per_block[0] << " " << per_block[1] << " " << per_block[2];
}

TEST(LooseCompact, IsOblivious) {
  auto result = obliv::check_oblivious(
      test::params(4, 512), 512, obliv::canonical_inputs(8),
      [](Client& c, const ExtArray& a) {
        loose_compact_blocks(c, a, a.num_blocks() / 5,
                             [](std::uint64_t, const BlockBuf& blk) {
                               return !blk[0].is_empty() && blk[0].key % 5 == 0;
                             },
                             99);
      });
  EXPECT_TRUE(result.oblivious) << result.diagnosis;
}

TEST(LooseCompact, SuccessRateHighAcrossSeeds) {
  int failures = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    Client client(test::params(4, 512));
    std::set<std::uint64_t> chosen;
    auto flat = sparse_blocks(256, 4, 0.12, 100 + t, &chosen);
    ExtArray a = client.alloc_blocks(256, Client::Init::kUninit);
    client.poke(a, flat);
    auto res = loose_compact_blocks(client, a, 63, block_nonempty_pred(), 200 + t);
    if (!res.status.ok()) ++failures;
    auto out = client.peek(res.out);
    if (found_blocks(out, 4) != chosen && res.status.ok()) {
      ADD_FAILURE() << "silent data loss at seed " << t;
    }
  }
  EXPECT_LE(failures, 1);
}

// ---------- Theorem 9 (log*) ----------

struct LogstarCase {
  std::uint64_t n_blocks;
  double density;
};

class LogstarTest : public ::testing::TestWithParam<LogstarCase> {};

TEST_P(LogstarTest, CompactsWithoutWideBlockAssumption) {
  const auto& p = GetParam();
  // Small cache (M = 8B): no tall-cache/wide-block assumption needed.
  Client client(test::params(4, 4 * 8));
  std::set<std::uint64_t> chosen;
  auto flat = sparse_blocks(p.n_blocks, 4, p.density, 21, &chosen);
  const std::uint64_t r_cap = std::max<std::uint64_t>(
      1, std::min<std::uint64_t>(p.n_blocks / 4 - 1, chosen.size() + 4));
  if (chosen.size() > r_cap) GTEST_SKIP() << "unlucky density draw";

  ExtArray a = client.alloc_blocks(p.n_blocks, Client::Init::kUninit);
  client.poke(a, flat);
  LogstarCompactResult res =
      logstar_compact_blocks(client, a, r_cap, block_nonempty_pred(), 17);
  ASSERT_TRUE(res.status.ok()) << res.status.message();
  EXPECT_EQ(res.distinguished, chosen.size());
  EXPECT_EQ(res.out.num_blocks(), 4 * r_cap + (r_cap + 3) / 4);

  auto out = client.peek(res.out);
  EXPECT_EQ(found_blocks(out, 4), chosen);
}

INSTANTIATE_TEST_SUITE_P(Cases, LogstarTest,
                         ::testing::Values(LogstarCase{64, 0.1}, LogstarCase{128, 0.15},
                                           LogstarCase{256, 0.2}, LogstarCase{512, 0.1},
                                           LogstarCase{48, 0.05}));

TEST(Logstar, PhaseCountIsTiny) {
  // log* growth: even at 4096 blocks only a couple of tower phases run.
  Client client(test::params(4, 32));
  std::set<std::uint64_t> chosen;
  auto flat = sparse_blocks(2048, 4, 0.2, 9, &chosen);
  ExtArray a = client.alloc_blocks(2048, Client::Init::kUninit);
  client.poke(a, flat);
  auto res = logstar_compact_blocks(client, a, 500, block_nonempty_pred(), 3);
  EXPECT_LE(res.phases, 3u);
}

TEST(Logstar, IsOblivious) {
  auto result = obliv::check_oblivious(
      test::params(4, 32), 256, obliv::canonical_inputs(9),
      [](Client& c, const ExtArray& a) {
        logstar_compact_blocks(c, a, a.num_blocks() / 5,
                               [](std::uint64_t, const BlockBuf& blk) {
                                 return !blk[0].is_empty() && blk[0].key % 3 == 0;
                               },
                               7);
      });
  EXPECT_TRUE(result.oblivious) << result.diagnosis;
}

}  // namespace
}  // namespace oem::core
