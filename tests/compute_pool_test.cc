// ComputePool: barrier semantics, exception propagation, inline fallback,
// oversubscription, and the load-bearing invariant of the whole compute
// plane -- chunked results (and the device trace) are byte-identical at any
// lane count.
#include "extmem/compute_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <vector>

#include "api/session.h"
#include "test_util.h"

namespace oem {
namespace {

TEST(ComputePool, WaitIsABarrier) {
  ComputePool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i)
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  pool.wait();
  EXPECT_EQ(done.load(), 64);
  // The pool is reusable after a barrier.
  for (int i = 0; i < 16; ++i)
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  pool.wait();
  EXPECT_EQ(done.load(), 80);
}

TEST(ComputePool, WorkerExceptionPropagatesAndPoolSurvives) {
  ComputePool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([&ran, i] {
      if (i == 7) throw std::runtime_error("lane boom");
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // All tasks still retired (the barrier drained the queue), and the pool
  // keeps working afterwards.
  EXPECT_EQ(ran.load(), 31);
  std::atomic<int> after{0};
  pool.submit([&after] { ++after; });
  pool.wait();
  EXPECT_EQ(after.load(), 1);
}

TEST(ComputePool, ZeroAndOneRunInline) {
  for (std::size_t n : {std::size_t{0}, std::size_t{1}}) {
    ComputePool pool(n);
    EXPECT_EQ(pool.threads(), 1u);
    int x = 0;
    pool.submit([&x] { x = 42; });
    EXPECT_EQ(x, 42);  // inline: the side effect is visible before wait()
    // Inline exceptions still surface at the barrier, like pooled ones.
    pool.submit([] { throw std::runtime_error("inline boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    pool.wait();  // error consumed; next barrier is clean
  }
}

TEST(ComputePool, ParallelForPartitionsExactly) {
  // Oversubscribed: far more lanes than this machine has cores, and far more
  // chunks than lanes.  Every index must be visited exactly once.
  ComputePool pool(32);
  const std::size_t count = 10000;
  std::vector<std::atomic<int>> hits(count);
  pool.parallel_for(count, 7, [&](std::size_t first, std::size_t last) {
    ASSERT_LT(first, last);
    ASSERT_LE(last, count);
    for (std::size_t i = first; i < last; ++i)
      hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < count; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ComputePool, ParallelForGrainZeroSplitsAcrossLanes) {
  ComputePool pool(4);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(1000, 0, [&](std::size_t first, std::size_t last) {
    total.fetch_add(last - first, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 1000u);
  pool.parallel_for(0, 0, [&](std::size_t, std::size_t) { FAIL(); });
}

TEST(ComputePool, ParallelForExceptionPropagates) {
  for (std::size_t n : {std::size_t{1}, std::size_t{4}}) {
    ComputePool pool(n);
    EXPECT_THROW(pool.parallel_for(100, 10,
                                   [&](std::size_t first, std::size_t) {
                                     if (first >= 50) throw std::runtime_error("chunk boom");
                                   }),
                 std::runtime_error);
  }
}

// The invariant the whole PR hangs on: an end-to-end Session workload
// produces byte-identical results AND a byte-identical device trace at any
// compute_threads value.  (io_engine_test pins the trace matrix across
// backends; this pins the thread axis on a sort + compact workload.)
TEST(ComputePool, SessionResultsAndTraceIdenticalAtAnyLaneCount) {
  const std::vector<Record> input = test::random_records(4096, 99);
  std::vector<TraceEvent> ref_events;
  std::vector<Record> ref_out;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    auto built = Session::Builder()
                     .block_records(8)
                     .cache_records(256)
                     .seed(7)
                     .compute_threads(threads)
                     .build();
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    Session s = std::move(built).value();
    auto a = s.outsource(input);
    ASSERT_TRUE(a.ok());
    s.trace().set_record_events(true);
    s.trace().reset();
    auto rep = s.sort(*a);
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
    auto out = s.retrieve(*a);
    ASSERT_TRUE(out.ok());
    if (threads == 1) {
      ref_events = s.trace().events();
      ref_out = *out;
      ASSERT_TRUE(std::is_sorted(ref_out.begin(), ref_out.end(), RecordLess{}));
    } else {
      EXPECT_TRUE(s.trace().events() == ref_events)
          << "trace diverged at threads=" << threads;
      EXPECT_EQ(*out, ref_out) << "output diverged at threads=" << threads;
    }
  }
}

TEST(ComputePool, BuilderRejectsAbsurdLaneCount) {
  auto built = Session::Builder().compute_threads(257).build();
  EXPECT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace oem
