#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "hash/hashing.h"
#include "hash/khash.h"
#include "util/stats.h"

namespace oem::hash {
namespace {

TEST(Mix, DeterministicAndSeedSensitive) {
  EXPECT_EQ(mix(1, 2), mix(1, 2));
  EXPECT_NE(mix(1, 2), mix(1, 3));
  EXPECT_NE(mix(1, 2), mix(2, 2));
}

TEST(ToRange, WithinRange) {
  for (std::uint64_t range : {1ull, 2ull, 3ull, 100ull, 1ull << 40}) {
    for (std::uint64_t x = 0; x < 64; ++x) EXPECT_LT(to_range(x, 9, range), range);
  }
}

TEST(ToRange, RoughlyUniform) {
  std::vector<std::uint64_t> counts(10, 0);
  for (std::uint64_t x = 0; x < 100000; ++x) ++counts[to_range(x, 77, 10)];
  EXPECT_LT(chi_square_uniform(counts), 35.0);  // 9 dof, very generous
}

TEST(Tabulation, DeterministicPerSeed) {
  Tabulation h1(5), h2(5), h3(6);
  EXPECT_EQ(h1(123456), h2(123456));
  EXPECT_NE(h1(123456), h3(123456));
}

TEST(Tabulation, SpreadsBits) {
  Tabulation h(42);
  std::set<std::uint64_t> vals;
  for (std::uint64_t x = 0; x < 1000; ++x) vals.insert(h(x));
  EXPECT_EQ(vals.size(), 1000u);  // collisions vanishingly unlikely
}

TEST(KHash, CellsAreDistinctPerKey) {
  // The paper requires h_1(x)..h_k(x) distinct; partitioning guarantees it.
  KHashFamily fam(4, 100, 7);
  for (std::uint64_t x = 0; x < 500; ++x) {
    auto cells = fam.cells_for(x);
    std::set<std::uint64_t> s(cells.begin(), cells.end());
    EXPECT_EQ(s.size(), cells.size());
    for (auto c : cells) EXPECT_LT(c, fam.cells());
  }
}

TEST(KHash, SegmentsPartitionTable) {
  KHashFamily fam(3, 99, 7);
  EXPECT_EQ(fam.segment_length(), 33u);
  EXPECT_EQ(fam.cells(), 99u);
  for (std::uint64_t x = 0; x < 100; ++x) {
    for (unsigned i = 0; i < 3; ++i) {
      const std::uint64_t c = fam.cell(x, i);
      EXPECT_GE(c, i * 33u);
      EXPECT_LT(c, (i + 1) * 33u);
    }
  }
}

TEST(KHash, ChecksumNeverZero) {
  KHashFamily fam(2, 10, 3);
  for (std::uint64_t x = 0; x < 1000; ++x) EXPECT_NE(fam.checksum(x), 0u);
}

TEST(KHash, RoundsDownToMultipleOfK) {
  KHashFamily fam(4, 103, 1);
  EXPECT_EQ(fam.cells() % 4, 0u);
  EXPECT_LE(fam.cells(), 103u);
}

}  // namespace
}  // namespace oem::hash
