#include <gtest/gtest.h>

#include "core/consolidate.h"
#include "obliv/trace_check.h"
#include "test_util.h"

namespace oem::core {
namespace {

TEST(Consolidate, PacksDistinguishedInOrder) {
  Client client(test::params(4, 32));
  ExtArray a = client.alloc(64, Client::Init::kUninit);
  auto v = test::iota_records(64);
  client.poke(a, v);

  // Distinguish multiples of 3.
  ConsolidateResult res = consolidate(
      client, a, [](std::uint64_t, const Record& r) { return r.key % 3 == 0; });
  EXPECT_EQ(res.distinguished, 22u);  // 0,3,...,63
  EXPECT_EQ(res.out.num_blocks(), 65u / 4 + 1 + (64 % 4 ? 1 : 0));

  auto out = client.peek(res.out);
  // Extract non-empty records: must be exactly the multiples of 3, in order.
  auto packed = test::non_empty(out);
  ASSERT_EQ(packed.size(), 22u);
  for (std::size_t i = 0; i < packed.size(); ++i) EXPECT_EQ(packed[i].key, 3 * i);
}

TEST(Consolidate, BlocksAreFullOrEmptyExceptLast) {
  Client client(test::params(4, 32));
  ExtArray a = client.alloc(60, Client::Init::kUninit);
  auto v = test::random_records(60, 1);
  client.poke(a, v);
  ConsolidateResult res = consolidate(
      client, a, [](std::uint64_t i, const Record&) { return i % 5 != 0; });

  auto out = client.peek(res.out);
  const std::uint64_t nb = res.out.num_blocks();
  std::uint64_t partials = 0;
  for (std::uint64_t b = 0; b < nb; ++b) {
    std::size_t cnt = 0;
    for (std::size_t r = 0; r < 4; ++r)
      if (!out[b * 4 + r].is_empty()) ++cnt;
    if (cnt != 0 && cnt != 4) {
      ++partials;
      EXPECT_EQ(b, nb - 1) << "partial block not at the end";
    }
  }
  EXPECT_LE(partials, 1u);
  EXPECT_EQ(res.full_blocks, res.distinguished / 4);
}

TEST(Consolidate, ExactIoCount) {
  // Lemma 3: n reads + (n+1) writes, nothing else.
  Client client(test::params(8, 64));
  ExtArray a = client.alloc(128, Client::Init::kUninit);
  client.poke(a, test::random_records(128, 2));
  client.reset_stats();
  consolidate(client, a, nonempty_pred());
  EXPECT_EQ(client.stats().reads, 16u);
  EXPECT_EQ(client.stats().writes, 17u);
}

TEST(Consolidate, PredicateSeesEveryRecordInOrder) {
  Client client(test::params(4, 32));
  ExtArray a = client.alloc(32, Client::Init::kUninit);
  client.poke(a, test::iota_records(32));
  std::vector<std::uint64_t> seen;
  consolidate(client, a, [&](std::uint64_t idx, const Record& r) {
    seen.push_back(idx);
    EXPECT_EQ(r.key, idx);  // iota layout
    return false;
  });
  ASSERT_EQ(seen.size(), 32u);
  for (std::uint64_t i = 0; i < 32; ++i) EXPECT_EQ(seen[i], i);
}

TEST(Consolidate, AllDistinguished) {
  Client client(test::params(4, 32));
  ExtArray a = client.alloc(16, Client::Init::kUninit);
  auto v = test::iota_records(16);
  client.poke(a, v);
  ConsolidateResult res = consolidate(client, a, nonempty_pred());
  EXPECT_EQ(res.distinguished, 16u);
  auto packed = test::non_empty(client.peek(res.out));
  EXPECT_EQ(packed, v);
}

TEST(Consolidate, NoneDistinguished) {
  Client client(test::params(4, 32));
  ExtArray a = client.alloc(16, Client::Init::kUninit);
  client.poke(a, test::iota_records(16));
  ConsolidateResult res =
      consolidate(client, a, [](std::uint64_t, const Record&) { return false; });
  EXPECT_EQ(res.distinguished, 0u);
  EXPECT_TRUE(test::non_empty(client.peek(res.out)).empty());
}

TEST(Consolidate, IsOblivious) {
  auto result = obliv::check_oblivious(
      test::params(4, 32), 128, obliv::canonical_inputs(5),
      [](Client& c, const ExtArray& a) {
        consolidate(c, a, [](std::uint64_t, const Record& r) {
          return !r.is_empty() && r.key % 2 == 0;  // data-dependent marking
        });
      });
  EXPECT_TRUE(result.oblivious) << result.diagnosis;
}

TEST(ConsolidatedBlockPred, FrontPackedConvention) {
  BlockBuf full = {{1, 1}, {2, 2}};
  BlockBuf empty = {Record{}, Record{}};
  BlockBuf partial = {{5, 5}, Record{}};
  EXPECT_TRUE(consolidated_block_distinguished(full));
  EXPECT_FALSE(consolidated_block_distinguished(empty));
  EXPECT_TRUE(consolidated_block_distinguished(partial));
}

}  // namespace
}  // namespace oem::core
