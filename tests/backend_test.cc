// Backend-conformance suite: every StorageBackend must behave identically
// from the client's point of view, and obliviousness must be
// backend-independent (the trace Bob sees is a function of the algorithm and
// its public parameters, never of where the blocks physically live).
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/oblivious_sort.h"
#include "extmem/backend.h"
#include "extmem/client.h"
#include "extmem/io_engine.h"
#include "extmem/remote.h"
#include "server/server.h"
#include "test_util.h"

namespace oem {
namespace {

/// One loopback server shared by every remote conformance construction; each
/// construction claims a fresh store id so tests never alias server state.
std::shared_ptr<RemoteServer> conformance_server() {
  static std::shared_ptr<RemoteServer> server = std::make_shared<RemoteServer>();
  return server;
}

BackendFactory remote_conformance_backend() {
  return [server = conformance_server()](
             std::size_t block_words) -> std::unique_ptr<StorageBackend> {
    static std::atomic<std::uint64_t> next_store{1u << 20};
    RemoteBackendOptions opts;
    opts.host = server->host();
    opts.port = server->port();
    opts.store_id = next_store.fetch_add(1);
    return remote_backend(opts)(block_words);
  };
}

/// A CachingBackend view that drags a sibling view of the SAME CacheCore
/// along for its whole lifetime: conformance must hold while another
/// "session" owns residency in the shared slab (cross-view eviction
/// pressure, namespaced keys, per-view write-back routing).
struct SharedCacheViewWithSibling : CachingBackend {
  SharedCacheViewWithSibling(std::size_t bw, SharedCacheHandle core,
                             std::unique_ptr<StorageBackend> sib)
      : CachingBackend(mem_backend()(bw), std::move(core)),
        sibling(std::move(sib)) {}
  std::unique_ptr<StorageBackend> sibling;
};

BackendFactory shared_cache_two_sessions_backend() {
  return [](std::size_t bw) -> std::unique_ptr<StorageBackend> {
    SharedCacheHandle core = make_shared_cache(4);
    auto sib = std::make_unique<CachingBackend>(mem_backend()(bw), core);
    // Park dirty sibling blocks in the shared slab so the view under test
    // starts out competing with another session's residency.
    (void)sib->resize(8);
    const std::vector<Word> w(bw, 0xAB);
    for (std::uint64_t b = 0; b < 4; ++b) (void)sib->write(b, w);
    return std::make_unique<SharedCacheViewWithSibling>(bw, std::move(core),
                                                        std::move(sib));
  };
}

LatencyProfile fast_profile() {
  LatencyProfile p;
  p.per_op_ns = 1000;
  p.per_word_ns = 10;
  p.real_sleep = false;  // account only: deterministic, fast
  return p;
}

struct BackendCase {
  std::string name;
  BackendFactory factory;
};

std::vector<BackendCase> conformance_cases() {
  return {
      {"mem", mem_backend()},
      {"file", file_backend()},
      {"latency_mem", latency_backend(mem_backend(), fast_profile())},
      {"latency_file", latency_backend(file_backend(), fast_profile())},
      {"sharded4_mem", sharded_backend(mem_backend(), 4)},
      {"sharded3_file", sharded_backend(file_backend(), 3)},
      {"sharded4_latency", sharded_backend(latency_backend(mem_backend(), fast_profile()), 4)},
      {"async_mem", async_backend(mem_backend())},
      {"async_sharded4", async_backend(sharded_backend(mem_backend(), 4))},
      {"encrypted_mem", encrypted_backend(mem_backend(), 0x5eedULL)},
      {"sharded4_encrypted", sharded_backend(encrypted_backend(mem_backend(), 0x5eedULL), 4)},
      {"cache_mem", caching_backend(mem_backend(), 8)},
      // A 2-block cache evicts on nearly every batch: the write-back and
      // shrink/regrow paths run constantly under the conformance contract.
      {"cache_tiny", caching_backend(mem_backend(), 2)},
      {"cache_sharded4_encrypted",
       caching_backend(sharded_backend(encrypted_backend(mem_backend(), 0x5eedULL), 4), 6)},
      {"async_cache_sharded4",
       async_backend(caching_backend(sharded_backend(mem_backend(), 4), 8))},
      // Authenticated encryption at the backend seam: MAC + version table per
      // block, alone, striped (per-shard version tables), and over the wire
      // under a write-back cache.
      {"auth_mem", encrypted_backend(mem_backend(), 0x5eedULL, /*authenticated=*/true)},
      {"auth_sharded4",
       sharded_backend(encrypted_backend(mem_backend(), 0x5eedULL, /*authenticated=*/true), 4)},
      {"auth_cache_remote",
       caching_backend(encrypted_backend(remote_conformance_backend(), 0x5eedULL,
                                         /*authenticated=*/true),
                       6)},
      // io_uring + O_DIRECT path (falls back to the threaded engine on
      // kernels/filesystems that refuse; conformance must hold either way).
      {"direct_file", direct_file_backend()},
      {"direct_file_sharded4", sharded_backend(direct_file_backend(), 4)},
      {"shared_cache_2sessions", shared_cache_two_sessions_backend()},
  };
}

class BackendConformance : public ::testing::TestWithParam<int> {
 protected:
  BackendConformance() {
    auto cases = conformance_cases();
    name_ = cases[GetParam()].name;
    backend_ = cases[GetParam()].factory(kWordsPerBlock);
  }
  static constexpr std::size_t kWordsPerBlock = 5;

  std::vector<Word> pattern(std::uint64_t block, Word salt = 0) const {
    std::vector<Word> w(kWordsPerBlock);
    for (std::size_t i = 0; i < w.size(); ++i) w[i] = block * 1000 + i + salt;
    return w;
  }

  std::string name_;
  std::unique_ptr<StorageBackend> backend_;
};

TEST_P(BackendConformance, RoundTripAndZeroInit) {
  ASSERT_TRUE(backend_->health().ok()) << backend_->health();
  ASSERT_TRUE(backend_->resize(4).ok());
  EXPECT_EQ(backend_->num_blocks(), 4u);

  std::vector<Word> out(kWordsPerBlock, 123);
  ASSERT_TRUE(backend_->read(3, out).ok()) << name_;
  for (Word w : out) EXPECT_EQ(w, 0u) << "fresh blocks must read as zero";

  const std::vector<Word> in = pattern(2);
  ASSERT_TRUE(backend_->write(2, in).ok());
  ASSERT_TRUE(backend_->read(2, out).ok());
  EXPECT_EQ(out, in);
}

TEST_P(BackendConformance, ResizePreservesPrefix) {
  ASSERT_TRUE(backend_->resize(8).ok());
  for (std::uint64_t b = 0; b < 8; ++b)
    ASSERT_TRUE(backend_->write(b, pattern(b)).ok());
  // Grow: old blocks survive, new blocks are zero.
  ASSERT_TRUE(backend_->resize(16).ok());
  std::vector<Word> out(kWordsPerBlock);
  for (std::uint64_t b = 0; b < 8; ++b) {
    ASSERT_TRUE(backend_->read(b, out).ok());
    EXPECT_EQ(out, pattern(b)) << name_ << " block " << b;
  }
  ASSERT_TRUE(backend_->read(12, out).ok());
  for (Word w : out) EXPECT_EQ(w, 0u);
  // Shrink then regrow: the shrunk-away region must be zero again.
  ASSERT_TRUE(backend_->resize(4).ok());
  EXPECT_FALSE(backend_->read(4, out).ok()) << "beyond capacity must fail";
  ASSERT_TRUE(backend_->resize(8).ok());
  ASSERT_TRUE(backend_->read(6, out).ok());
  for (Word w : out) EXPECT_EQ(w, 0u) << "shrunk-away blocks must not resurface";
  ASSERT_TRUE(backend_->read(2, out).ok());
  EXPECT_EQ(out, pattern(2));
}

TEST_P(BackendConformance, BatchedMatchesSingles) {
  ASSERT_TRUE(backend_->resize(10).ok());
  // Scattered, partly contiguous ids: exercises run coalescing.
  const std::vector<std::uint64_t> ids = {7, 2, 3, 4, 9, 0};
  std::vector<Word> flat(ids.size() * kWordsPerBlock);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto w = pattern(ids[i], /*salt=*/77);
    std::copy(w.begin(), w.end(), flat.begin() + i * kWordsPerBlock);
  }
  ASSERT_TRUE(backend_->write_many(ids, flat).ok());

  // Every block lands where the matching single-block read expects it.
  std::vector<Word> out(kWordsPerBlock);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE(backend_->read(ids[i], out).ok());
    EXPECT_EQ(out, pattern(ids[i], 77)) << name_ << " block " << ids[i];
  }

  // And read_many returns the same flat buffer.
  std::vector<Word> flat2(flat.size(), 0);
  ASSERT_TRUE(backend_->read_many(ids, flat2).ok());
  EXPECT_EQ(flat2, flat);

  // Empty batches are no-ops.
  EXPECT_TRUE(backend_->read_many({}, {}).ok());
  EXPECT_TRUE(backend_->write_many({}, {}).ok());
}

TEST_P(BackendConformance, RejectsBadArguments) {
  ASSERT_TRUE(backend_->resize(4).ok());
  std::vector<Word> out(kWordsPerBlock);
  EXPECT_EQ(backend_->read(4, out).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(backend_->write(17, out).code(), StatusCode::kInvalidArgument);
  std::vector<Word> wrong(kWordsPerBlock - 1);
  EXPECT_EQ(backend_->read(0, wrong).code(), StatusCode::kInvalidArgument);
  const std::vector<std::uint64_t> ids = {0, 1};
  std::vector<Word> short_buf(kWordsPerBlock);  // needs 2 blocks' worth
  EXPECT_EQ(backend_->read_many(ids, short_buf).code(), StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendConformance,
                         ::testing::Range(0, 21), [](const auto& info) {
                           return conformance_cases()[info.param].name;
                         });

// ---------------------------------------------------------------------------
// Backend-specific behavior.

TEST(FileBackend, CoalescesContiguousRunsIntoSingleSyscalls) {
  FileBackend fb(4);
  ASSERT_TRUE(fb.health().ok()) << fb.health();
  ASSERT_TRUE(fb.resize(64).ok());
  const std::uint64_t before = fb.syscalls();
  std::vector<std::uint64_t> ids(32);
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i + 8;  // one run
  std::vector<Word> buf(ids.size() * 4, 42);
  ASSERT_TRUE(fb.write_many(ids, buf).ok());
  EXPECT_EQ(fb.syscalls() - before, 1u) << "32 contiguous blocks, one pwrite";
  ASSERT_TRUE(fb.read_many(ids, buf).ok());
  EXPECT_EQ(fb.syscalls() - before, 2u) << "...and one pread";
  // A scattered batch costs one syscall per run, not per block.
  const std::vector<std::uint64_t> scattered = {0, 1, 2, 40, 41, 50};
  std::vector<Word> buf2(scattered.size() * 4);
  ASSERT_TRUE(fb.read_many(scattered, buf2).ok());
  EXPECT_EQ(fb.syscalls() - before, 5u) << "3 runs -> 3 more syscalls";
}

TEST(FileBackend, TempFileIsRemovedOnDestruction) {
  std::string path;
  {
    FileBackend fb(2);
    ASSERT_TRUE(fb.health().ok());
    path = fb.path();
    struct stat st{};
    EXPECT_EQ(::stat(path.c_str(), &st), 0) << "backing file must exist";
  }
  struct stat st{};
  EXPECT_NE(::stat(path.c_str(), &st), 0) << "temp file must be cleaned up";
}

TEST(FileBackend, UnopenablePathReportsIoStatus) {
  FileBackendOptions opts;
  opts.path = "/nonexistent-dir-oem/blocks.bin";
  FileBackend fb(2, opts);
  EXPECT_EQ(fb.health().code(), StatusCode::kIo);
  std::vector<Word> out(2);
  EXPECT_EQ(fb.read(0, out).code(), StatusCode::kIo);
}

TEST(LatencyBackend, ChargesOneRoundTripPerBatch) {
  LatencyProfile p;
  p.per_op_ns = 1000;
  p.per_word_ns = 1;
  p.real_sleep = false;
  auto lb = std::make_unique<LatencyBackend>(std::make_unique<MemBackend>(4), p);
  ASSERT_TRUE(lb->resize(32).ok());

  std::vector<Word> one(4);
  ASSERT_TRUE(lb->read(0, one).ok());
  EXPECT_EQ(lb->ops(), 1u);
  EXPECT_EQ(lb->simulated_ns(), 1000u + 4u);

  // 8 blocks batched: one op, 8 blocks' worth of streaming.
  std::vector<std::uint64_t> ids = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<Word> buf(8 * 4);
  ASSERT_TRUE(lb->read_many(ids, buf).ok());
  EXPECT_EQ(lb->ops(), 2u);
  EXPECT_EQ(lb->simulated_ns(), (1000u + 4u) + (1000u + 32u));

  // The same 8 blocks read singly: 8 ops, 8 round trips.
  for (std::uint64_t b : ids) ASSERT_TRUE(lb->read(b, one).ok());
  EXPECT_EQ(lb->ops(), 10u);
  EXPECT_EQ(lb->simulated_ns(), (1000u + 4u) + (1000u + 32u) + 8 * (1000u + 4u));
}

// ---------------------------------------------------------------------------
// The tentpole guarantee: obliviousness is backend-independent.  The same
// algorithm with the same public parameters and seed produces the
// byte-identical access trace on all three backends, and the same result.

TEST(BackendTraceEquivalence, ObliviousSortIdenticalTraceOnAllBackends) {
  const std::size_t B = 4;
  const std::uint64_t M = 16 * B;
  const std::uint64_t N = 96 * B;
  const auto input = test::random_records(N, 7);

  struct RunResult {
    std::string name;
    std::uint64_t trace_hash = 0;
    std::uint64_t trace_len = 0;
    std::uint64_t reads = 0, writes = 0;
    std::vector<Record> sorted;
  };
  std::vector<RunResult> runs;

  for (const auto& c : conformance_cases()) {
    ClientParams params = test::params(B, M, /*seed=*/3);
    params.backend = c.factory;
    Client client(params);
    ExtArray a = client.alloc(N, Client::Init::kUninit);
    client.poke(a, input);
    client.reset_stats();
    client.device().trace().reset();
    auto res = core::oblivious_sort(client, a, /*seed=*/11);
    ASSERT_TRUE(res.status.ok()) << c.name << ": " << res.status;
    RunResult r;
    r.name = c.name;
    r.trace_hash = client.device().trace().hash();
    r.trace_len = client.device().trace().size();
    r.reads = client.stats().reads;
    r.writes = client.stats().writes;
    r.sorted = client.peek(a);
    runs.push_back(std::move(r));
  }

  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].trace_hash, runs[0].trace_hash)
        << runs[i].name << " vs " << runs[0].name
        << ": obliviousness must be backend-independent";
    EXPECT_EQ(runs[i].trace_len, runs[0].trace_len) << runs[i].name;
    EXPECT_EQ(runs[i].reads, runs[0].reads) << runs[i].name;
    EXPECT_EQ(runs[i].writes, runs[0].writes) << runs[i].name;
    EXPECT_EQ(runs[i].sorted, runs[0].sorted) << runs[i].name;
  }
  // And the sort actually sorted.
  for (std::size_t i = 1; i < runs[0].sorted.size(); ++i)
    EXPECT_LE(runs[0].sorted[i - 1].key, runs[0].sorted[i].key);
}

// Client-level batched helpers must leave the identical trace as the
// per-block path they replaced (same events, same order).
TEST(BackendTraceEquivalence, BatchedRecordIoTraceMatchesPerBlock) {
  const std::size_t B = 4;
  const auto input = test::random_records(37, 5);
  std::vector<std::uint64_t> hashes;
  for (std::uint64_t batch : {std::uint64_t{1}, std::uint64_t{8}}) {
    ClientParams params = test::params(B, 64, 3);
    params.io_batch_blocks = batch;
    Client client(params);
    ExtArray a = client.alloc(64, Client::Init::kEmpty);
    client.device().trace().reset();
    std::vector<Record> buf(input);
    client.write_records(a, 3, buf);              // partial head/tail
    std::vector<Record> out(41);
    client.read_records(a, 1, out);               // partial head
    client.read_records(a, 4, std::span<Record>(out).subspan(0, 24));  // aligned
    hashes.push_back(client.device().trace().hash());
  }
  EXPECT_EQ(hashes[0], hashes[1])
      << "batch window must not change the adversary's view";
}

}  // namespace
}  // namespace oem
