#include <gtest/gtest.h>

#include <algorithm>

#include "core/select.h"
#include "obliv/trace_check.h"
#include "test_util.h"

namespace oem::core {
namespace {

Record true_kth(std::vector<Record> v, std::uint64_t k) {
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(k - 1), v.end(),
                   RecordLess{});
  return v[k - 1];
}

struct SelectCase {
  std::uint64_t N;
  std::uint64_t k;
  std::size_t B;
  std::uint64_t M;
};

class SelectTest : public ::testing::TestWithParam<SelectCase> {};

TEST_P(SelectTest, FindsKthSmallest) {
  const auto& p = GetParam();
  Client client(test::params(p.B, p.M));
  auto v = test::random_records(p.N, 31);
  ExtArray a = client.alloc(p.N, Client::Init::kUninit);
  client.poke(a, v);

  SelectResult res = oblivious_select(client, a, p.k, /*seed=*/5);
  ASSERT_TRUE(res.status.ok()) << res.status.message();
  EXPECT_EQ(res.value, true_kth(v, p.k));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SelectTest,
    ::testing::Values(SelectCase{100, 50, 4, 1024},     // base case (fits cache)
                      SelectCase{4096, 1, 4, 256},      // min
                      SelectCase{4096, 4096, 4, 256},   // max
                      SelectCase{4096, 2048, 4, 256},   // median
                      SelectCase{4096, 100, 4, 256},
                      SelectCase{10000, 5000, 8, 512},
                      SelectCase{10000, 9999, 8, 512},
                      SelectCase{16384, 8192, 16, 2048},
                      SelectCase{5000, 1234, 4, 256}));

TEST(Select, HandlesDuplicateKeys) {
  Client client(test::params(4, 256));
  std::vector<Record> v(4096);
  for (std::uint64_t i = 0; i < v.size(); ++i) v[i] = {i % 5, i};
  ExtArray a = client.alloc(v.size(), Client::Init::kUninit);
  client.poke(a, v);
  for (std::uint64_t k : {1ull, 819ull, 820ull, 2048ull, 4096ull}) {
    SelectResult res = oblivious_select(client, a, k, 77);
    ASSERT_TRUE(res.status.ok()) << "k=" << k << ": " << res.status.message();
    EXPECT_EQ(res.value, true_kth(v, k)) << "k=" << k;
  }
}

TEST(Select, AllEqualKeys) {
  Client client(test::params(4, 256));
  std::vector<Record> v(4096);
  for (std::uint64_t i = 0; i < v.size(); ++i) v[i] = {42, i};
  ExtArray a = client.alloc(v.size(), Client::Init::kUninit);
  client.poke(a, v);
  SelectResult res = oblivious_select(client, a, 2000, 13);
  ASSERT_TRUE(res.status.ok()) << res.status.message();
  EXPECT_EQ(res.value.key, 42u);
  EXPECT_EQ(res.value, true_kth(v, 2000));
}

TEST(Select, InvalidRank) {
  Client client(test::params(4, 64));
  ExtArray a = client.alloc(64, Client::Init::kUninit);
  client.poke(a, test::iota_records(64));
  EXPECT_EQ(oblivious_select(client, a, 0, 1).status.code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(oblivious_select(client, a, 65, 1).status.code(),
            StatusCode::kInvalidArgument);
}

TEST(Select, SucceedsAcrossSeeds) {
  // The paper's w.h.p. claim: failures should be rare and, when they occur,
  // reported (never a silent wrong answer).
  Client client(test::params(4, 256));
  auto v = test::random_records(4096, 55);
  ExtArray a = client.alloc(v.size(), Client::Init::kUninit);
  client.poke(a, v);
  const Record truth = true_kth(v, 1000);
  int failures = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    SelectResult res = oblivious_select(client, a, 1000, seed);
    if (!res.status.ok()) {
      ++failures;
    } else {
      EXPECT_EQ(res.value, truth) << "silent wrong answer at seed " << seed;
    }
  }
  EXPECT_LE(failures, 1);
}

TEST(Select, LinearIoShape) {
  // I/Os per record should stay bounded as N grows (Theorem 13: O(N/B)).
  // Uses the Chernoff-sized band: the paper's 8 N^{7/8} constant exceeds N
  // at these sizes (see SelectOptions::paper_band).
  std::vector<double> per_rec;
  for (std::uint64_t N : {4096ull, 16384ull, 65536ull}) {
    Client client(test::params(8, 1024));
    ExtArray a = client.alloc(N, Client::Init::kUninit);
    client.poke(a, test::random_records(N, 3));
    client.reset_stats();
    auto res = oblivious_select(client, a, N / 2, 9, practical_select_options());
    ASSERT_TRUE(res.status.ok()) << res.status.message();
    per_rec.push_back(static_cast<double>(client.stats().total()) /
                      static_cast<double>(N));
  }
  EXPECT_LT(per_rec[2], per_rec[0] * 1.7)
      << per_rec[0] << " " << per_rec[1] << " " << per_rec[2];
}

TEST(Select, PracticalOptionsCorrectAcrossRanks) {
  Client client(test::params(8, 1024));
  auto v = test::random_records(16384, 81);
  ExtArray a = client.alloc(v.size(), Client::Init::kUninit);
  client.poke(a, v);
  for (std::uint64_t k : {1ull, 500ull, 8192ull, 16000ull, 16384ull}) {
    auto res = oblivious_select(client, a, k, 6, practical_select_options());
    ASSERT_TRUE(res.status.ok()) << "k=" << k << ": " << res.status.message();
    EXPECT_EQ(res.value, true_kth(v, k)) << "k=" << k;
  }
}

TEST(Select, IsOblivious) {
  auto result = obliv::check_oblivious(
      test::params(4, 256), 4096, obliv::canonical_inputs(10),
      [](Client& c, const ExtArray& a) {
        (void)oblivious_select(c, a, a.num_records() / 3, 5);
      });
  EXPECT_TRUE(result.oblivious) << result.diagnosis;
}

}  // namespace
}  // namespace oem::core
