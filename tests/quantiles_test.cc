#include <gtest/gtest.h>

#include <algorithm>

#include "core/quantiles.h"
#include "sortnet/external_sort.h"
#include "obliv/trace_check.h"
#include "test_util.h"

namespace oem::core {
namespace {

std::vector<Record> true_quantiles(std::vector<Record> v, std::uint64_t q) {
  std::sort(v.begin(), v.end(), RecordLess{});
  std::vector<Record> out;
  for (std::uint64_t rank : quantile_ranks(v.size(), q))
    out.push_back(v[rank - 1]);
  return out;
}

TEST(QuantileRanks, Formula) {
  auto r = quantile_ranks(100, 3);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0], 25u);
  EXPECT_EQ(r[1], 50u);
  EXPECT_EQ(r[2], 75u);
}

struct QuantCase {
  std::uint64_t N;
  std::uint64_t q;
  std::size_t B;
  std::uint64_t M;
};

class QuantilesTest : public ::testing::TestWithParam<QuantCase> {};

TEST_P(QuantilesTest, MatchesSortedRanks) {
  const auto& p = GetParam();
  Client client(test::params(p.B, p.M));
  auto v = test::random_records(p.N, 77);
  ExtArray a = client.alloc(p.N, Client::Init::kUninit);
  client.poke(a, v);

  QuantilesResult res = oblivious_quantiles(client, a, p.q, /*seed=*/3);
  ASSERT_TRUE(res.status.ok()) << res.status.message();
  auto truth = true_quantiles(v, p.q);
  ASSERT_EQ(res.quantiles.size(), p.q);
  for (std::uint64_t j = 0; j < p.q; ++j)
    EXPECT_EQ(res.quantiles[j].key, truth[j].key) << "quantile " << j;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, QuantilesTest,
    ::testing::Values(QuantCase{512, 3, 4, 1024},   // dense path
                      QuantCase{4096, 2, 4, 64},    // sparse path, q=2
                      QuantCase{8192, 3, 4, 64},    // sparse path, q=3
                      QuantCase{8192, 4, 8, 128},
                      QuantCase{20000, 4, 8, 256},
                      QuantCase{4096, 1, 4, 64}));  // q=1: median-ish

TEST(Quantiles, InvalidArgs) {
  Client client(test::params(4, 64));
  ExtArray a = client.alloc(64, Client::Init::kUninit);
  client.poke(a, test::iota_records(64));
  EXPECT_FALSE(oblivious_quantiles(client, a, 0, 1).status.ok());
  EXPECT_FALSE(oblivious_quantiles(client, a, 64, 1).status.ok());
}

TEST(Quantiles, PaddedArrayWithRealRecordsOption) {
  // Array capacity 8192 but only 3000 real records; quantiles must be over
  // the real content.
  Client client(test::params(4, 64));
  std::vector<Record> v(8192);
  auto real = test::random_records(3000, 5);
  for (std::size_t i = 0; i < real.size(); ++i) v[i * 2] = real[i];  // scattered
  ExtArray a = client.alloc(8192, Client::Init::kUninit);
  client.poke(a, v);

  QuantilesOptions opts;
  opts.real_records = 3000;
  QuantilesResult res = oblivious_quantiles(client, a, 3, 11, opts);
  ASSERT_TRUE(res.status.ok()) << res.status.message();
  auto truth = true_quantiles(real, 3);
  for (std::uint64_t j = 0; j < 3; ++j)
    EXPECT_EQ(res.quantiles[j].key, truth[j].key);
}

TEST(Quantiles, SucceedsAcrossSeeds) {
  Client client(test::params(4, 64));
  auto v = test::random_records(4096, 19);
  ExtArray a = client.alloc(v.size(), Client::Init::kUninit);
  client.poke(a, v);
  auto truth = true_quantiles(v, 3);
  int failures = 0;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    auto res = oblivious_quantiles(client, a, 3, seed);
    if (!res.status.ok()) {
      ++failures;
      continue;
    }
    for (std::uint64_t j = 0; j < 3; ++j)
      EXPECT_EQ(res.quantiles[j].key, truth[j].key)
          << "silent wrong quantile at seed " << seed;
  }
  EXPECT_LE(failures, 1);
}

TEST(Quantiles, CostsNoMoreThanASort) {
  // In the paper's dense regime ((M/B) > (N/B)^{1/4}) quantile selection IS
  // a Lemma-2 sort plus scans -- every laboratory-scale configuration lands
  // here.  Pin that the overhead beyond the sort stays a small constant.
  QuantilesOptions opts;
  opts.paper_intervals = false;
  for (std::uint64_t N : {8192ull, 65536ull}) {
    Client client(test::params(8, 1024));
    ExtArray a = client.alloc(N, Client::Init::kUninit);
    client.poke(a, test::random_records(N, 3));
    client.reset_stats();
    auto res = oblivious_quantiles(client, a, 2, 9, opts);
    ASSERT_TRUE(res.status.ok()) << res.status.message();
    const std::uint64_t quant_ios = client.stats().total();
    const std::uint64_t sort_ios =
        sortnet::ext_sort_predicted_ios(a.num_blocks(), client.m());
    EXPECT_LE(quant_ios, sort_ios + 4 * a.num_blocks()) << "N=" << N;
  }
}

TEST(Quantiles, SparseRegimePipelineRuns) {
  // Force the paper's sparse path (n > m^4) with a deliberately tiny cache;
  // checks the full sample/interval/compaction pipeline end to end.
  QuantilesOptions opts;
  opts.paper_intervals = false;
  Client client(test::params(8, 64));  // m = 8, m^4 = 4096 < n
  const std::uint64_t N = 8 * 8192;    // n = 8192 blocks
  auto v = test::random_records(N, 12);
  ExtArray a = client.alloc(N, Client::Init::kUninit);
  client.poke(a, v);
  auto res = oblivious_quantiles(client, a, 2, 31, opts);
  ASSERT_TRUE(res.status.ok()) << res.status.message();
  auto truth = true_quantiles(v, 2);
  for (std::uint64_t j = 0; j < 2; ++j)
    EXPECT_EQ(res.quantiles[j].key, truth[j].key) << "quantile " << j;
}

TEST(Quantiles, ChernoffIntervalsCorrect) {
  QuantilesOptions opts;
  opts.paper_intervals = false;
  Client client(test::params(8, 1024));
  auto v = test::random_records(32768, 4);
  ExtArray a = client.alloc(v.size(), Client::Init::kUninit);
  client.poke(a, v);
  auto res = oblivious_quantiles(client, a, 4, 23, opts);
  ASSERT_TRUE(res.status.ok()) << res.status.message();
  auto truth = true_quantiles(v, 4);
  for (std::uint64_t j = 0; j < 4; ++j)
    EXPECT_EQ(res.quantiles[j].key, truth[j].key) << "quantile " << j;
}

TEST(Quantiles, IsOblivious) {
  auto result = obliv::check_oblivious(
      test::params(4, 64), 4096, obliv::canonical_inputs(11),
      [](Client& c, const ExtArray& a) {
        (void)oblivious_quantiles(c, a, 3, 21);
      });
  EXPECT_TRUE(result.oblivious) << result.diagnosis;
}

}  // namespace
}  // namespace oem::core
