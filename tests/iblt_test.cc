#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "iblt/iblt.h"
#include "iblt/oblivious_iblt.h"
#include "obliv/trace_check.h"
#include "test_util.h"

namespace oem::iblt {
namespace {

TEST(Iblt, InsertGetRoundTrip) {
  Iblt t(64, {}, 1);
  for (std::uint64_t k = 0; k < 32; ++k) t.insert(k, k * 7);
  int hits = 0;
  for (std::uint64_t k = 0; k < 32; ++k) {
    auto v = t.get(k);
    if (v) {
      EXPECT_EQ(*v, k * 7);
      ++hits;
    }
  }
  EXPECT_GT(hits, 24);  // get may fail with small probability per key
}

TEST(Iblt, GetAbsentKeyMostlyNullopt) {
  Iblt t(64, {}, 1);
  for (std::uint64_t k = 0; k < 32; ++k) t.insert(k, k);
  int false_hits = 0;
  for (std::uint64_t k = 1000; k < 1100; ++k)
    if (t.get(k)) ++false_hits;
  EXPECT_EQ(false_hits, 0);
}

TEST(Iblt, ListEntriesRecoversAll) {
  Iblt t(100, {}, 2);
  std::map<std::uint64_t, std::uint64_t> ref;
  for (std::uint64_t k = 0; k < 100; ++k) {
    t.insert(k * 3 + 1, k * k);
    ref[k * 3 + 1] = k * k;
  }
  std::vector<Entry> out;
  ASSERT_TRUE(t.list_entries(out));
  EXPECT_EQ(out.size(), 100u);
  for (const auto& e : out) {
    ASSERT_TRUE(ref.count(e.key));
    EXPECT_EQ(ref[e.key], e.value);
  }
}

TEST(Iblt, DeleteThenListEmpty) {
  Iblt t(16, {}, 3);
  t.insert(5, 50);
  t.insert(6, 60);
  t.erase(5, 50);
  std::vector<Entry> out;
  EXPECT_TRUE(t.list_entries(out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key, 6u);
}

TEST(Iblt, OverloadedTableFailsToDecode) {
  // 4x capacity: peeling must report incompleteness, not fabricate entries.
  IbltParams params;
  Iblt t(16, params, 4);
  for (std::uint64_t k = 0; k < 64; ++k) t.insert(k, k);
  std::vector<Entry> out;
  EXPECT_FALSE(t.list_entries(out));
}

TEST(Iblt, DecodeSuccessRateAtPaperSizing) {
  // Lemma 1: with m = delta*k*n cells the failure rate should be tiny.
  int failures = 0;
  const int trials = 200;
  for (int trial = 0; trial < trials; ++trial) {
    Iblt t(50, {}, 1000 + trial);
    for (std::uint64_t k = 0; k < 50; ++k) t.insert(k ^ (trial * 977), k);
    std::vector<Entry> out;
    if (!t.list_entries(out) || out.size() != 50) ++failures;
  }
  EXPECT_LE(failures, 2);
}

// ---------- Oblivious external-memory IBLT ----------

struct ObliviousCase {
  std::size_t B;
  std::uint64_t M;
  std::uint64_t n_blocks;
  std::uint64_t capacity;
  bool force_external;
};

class ObliviousIbltTest : public ::testing::TestWithParam<ObliviousCase> {};

TEST_P(ObliviousIbltTest, BuildExtractRoundTrip) {
  const auto& p = GetParam();
  Client client(test::params(p.B, p.M));
  ExtArray a = client.alloc_blocks(p.n_blocks, Client::Init::kUninit);
  // Every 4th block is distinguished, content = recognizable pattern.
  std::vector<Record> flat(p.n_blocks * p.B);
  std::vector<std::uint64_t> dist_blocks;
  for (std::uint64_t b = 0; b < p.n_blocks; ++b) {
    if (b % 4 == 1 && dist_blocks.size() < p.capacity) {
      dist_blocks.push_back(b);
      for (std::size_t r = 0; r < p.B; ++r) flat[b * p.B + r] = {b * 100 + r, b};
    }
  }
  client.poke(a, flat);

  ObliviousIbltOptions opts;
  opts.force_external_decode = p.force_external;
  ObliviousBlockIblt table(client, p.capacity, opts, /*seed=*/9);
  table.build(a, [](std::uint64_t, const BlockBuf& blk) {
    return !blk[0].is_empty();
  });
  ExtArray out = client.alloc_blocks(p.capacity, Client::Init::kUninit);
  Status st = table.extract(out);
  ASSERT_TRUE(st.ok()) << st.message();

  auto got = client.peek(out);
  // Decoded blocks appear in original index order, then empties.
  for (std::size_t i = 0; i < dist_blocks.size(); ++i) {
    const std::uint64_t b = dist_blocks[i];
    for (std::size_t r = 0; r < p.B; ++r) {
      EXPECT_EQ(got[i * p.B + r].key, b * 100 + r)
          << "block " << i << " record " << r;
    }
  }
  for (std::size_t i = dist_blocks.size() * p.B; i < got.size(); ++i)
    EXPECT_TRUE(got[i].is_empty());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ObliviousIbltTest,
    ::testing::Values(ObliviousCase{4, 1024, 32, 10, false},   // in-cache decode
                      ObliviousCase{4, 64, 32, 10, false},     // auto-external
                      ObliviousCase{4, 1024, 32, 10, true},    // forced external
                      ObliviousCase{8, 2048, 64, 18, false},
                      ObliviousCase{8, 128, 64, 18, true},
                      ObliviousCase{2, 64, 16, 4, true},
                      ObliviousCase{1, 16, 16, 4, true}));     // B=1 edge

TEST(ObliviousIblt, OverflowReportsFailure) {
  Client client(test::params(4, 4096));
  const std::uint64_t n_blocks = 64;
  ExtArray a = client.alloc_blocks(n_blocks, Client::Init::kUninit);
  std::vector<Record> flat(n_blocks * 4);
  for (std::uint64_t b = 0; b < n_blocks; ++b)
    for (std::size_t r = 0; r < 4; ++r) flat[b * 4 + r] = {b, r};  // ALL distinguished
  client.poke(a, flat);
  ObliviousBlockIblt table(client, /*capacity=*/8, {}, 11);
  table.build(a, [](std::uint64_t, const BlockBuf&) { return true; });
  ExtArray out = client.alloc_blocks(8, Client::Init::kUninit);
  EXPECT_FALSE(table.extract(out).ok());
}

TEST(ObliviousIblt, BuildIsOblivious) {
  // The insertion pass must produce identical traces whether zero, some, or
  // all blocks are distinguished (content decides, trace must not).
  auto algo = [](Client& c, const ExtArray& a) {
    ObliviousIbltOptions opts;
    ObliviousBlockIblt table(c, 8, opts, 5);
    table.build(a, [](std::uint64_t, const BlockBuf& blk) {
      return !blk[0].is_empty() && blk[0].key % 7 == 0;
    });
    ExtArray out = c.alloc_blocks(8, Client::Init::kUninit);
    (void)table.extract(out);
  };
  auto result = obliv::check_oblivious(test::params(4, 4096), 128,
                                       obliv::canonical_inputs(3), algo);
  EXPECT_TRUE(result.oblivious) << result.diagnosis;
}

TEST(ObliviousIblt, ExternalDecodeIsOblivious) {
  auto algo = [](Client& c, const ExtArray& a) {
    ObliviousIbltOptions opts;
    opts.force_external_decode = true;
    ObliviousBlockIblt table(c, 6, opts, 5);
    table.build(a, [](std::uint64_t, const BlockBuf& blk) {
      return !blk[0].is_empty() && blk[0].key % 11 == 0;
    });
    ExtArray out = c.alloc_blocks(6, Client::Init::kUninit);
    (void)table.extract(out);
  };
  auto result = obliv::check_oblivious(test::params(4, 64), 64,
                                       obliv::canonical_inputs(4), algo);
  EXPECT_TRUE(result.oblivious) << result.diagnosis;
}

TEST(ObliviousIblt, TraceSameOnSuccessAndFailure) {
  // Run once with decodable load and once with hopeless overload; traces of
  // extract() must match (failure is reported, never betrayed by access
  // pattern).  Same sizes, same seed.
  auto run = [&](bool overload) {
    Client client(test::params(4, 64));
    ExtArray a = client.alloc_blocks(64, Client::Init::kUninit);
    std::vector<Record> flat(64 * 4);
    for (std::uint64_t b = 0; b < 64; ++b) {
      const bool dist = overload ? true : (b % 16 == 0);
      if (dist)
        for (std::size_t r = 0; r < 4; ++r) flat[b * 4 + r] = {b, r};
    }
    client.poke(a, flat);
    ObliviousIbltOptions opts;
    opts.force_external_decode = true;
    ObliviousBlockIblt table(client, 6, opts, 13);
    table.build(a, [](std::uint64_t, const BlockBuf& blk) {
      return !blk[0].is_empty();
    });
    ExtArray out = client.alloc_blocks(6, Client::Init::kUninit);
    client.device().trace().reset();
    const Status st = table.extract(out);
    return std::make_pair(client.device().trace().hash(), st.ok());
  };
  auto [h_ok, ok1] = run(false);
  auto [h_fail, ok2] = run(true);
  EXPECT_TRUE(ok1);
  EXPECT_FALSE(ok2);
  EXPECT_EQ(h_ok, h_fail) << "extract trace leaked the outcome";
}

}  // namespace
}  // namespace oem::iblt
