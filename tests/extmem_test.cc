#include <gtest/gtest.h>

#include <vector>

#include "extmem/cache_meter.h"
#include "extmem/client.h"
#include "obliv/trace_check.h"
#include "test_util.h"

namespace oem {
namespace {

TEST(Device, CountsAndTraces) {
  BlockDevice dev(4);
  Extent e = dev.allocate(3);
  EXPECT_EQ(e.first_block, 0u);
  EXPECT_EQ(dev.num_blocks(), 3u);
  std::vector<Word> buf(4, 7);
  dev.write(1, buf);
  dev.read(1, buf);
  EXPECT_EQ(dev.stats().writes, 1u);
  EXPECT_EQ(dev.stats().reads, 1u);
  EXPECT_EQ(dev.trace().size(), 2u);
}

TEST(Device, TraceHashDistinguishesSequences) {
  BlockDevice d1(2), d2(2);
  d1.allocate(4);
  d2.allocate(4);
  std::vector<Word> buf(2, 0);
  d1.write(0, buf);
  d1.write(1, buf);
  d2.write(1, buf);
  d2.write(0, buf);
  EXPECT_NE(d1.trace().hash(), d2.trace().hash());
}

TEST(Device, LifoRelease) {
  BlockDevice dev(2);
  Extent a = dev.allocate(4);
  Extent b = dev.allocate(4);
  dev.release(b);
  EXPECT_EQ(dev.num_blocks(), 4u);
  dev.release(a);
  EXPECT_EQ(dev.num_blocks(), 0u);
}

TEST(Client, BlockRoundTrip) {
  Client c(test::params(8, 64));
  ExtArray a = c.alloc(32);
  BlockBuf blk(8);
  for (std::size_t i = 0; i < 8; ++i) blk[i] = {i * 10, i};
  c.write_block(a, 2, blk);
  BlockBuf got;
  c.read_block(a, 2, got);
  EXPECT_EQ(got, blk);
}

TEST(Client, CiphertextHidesPlaintext) {
  Client c(test::params(4, 32));
  ExtArray a = c.alloc(4, Client::Init::kUninit);
  BlockBuf blk(4);
  for (std::size_t i = 0; i < 4; ++i) blk[i] = {0xdeadbeef, 0xcafe};
  c.write_block(a, 0, blk);
  auto raw = c.device().raw(a.device_block(0));
  int matches = 0;
  for (Word w : raw)
    if (w == 0xdeadbeef || w == 0xcafe) ++matches;
  EXPECT_EQ(matches, 0) << "plaintext leaked into Bob's storage";
}

TEST(Client, ReencryptionChangesCiphertext) {
  Client c(test::params(4, 32));
  ExtArray a = c.alloc(4, Client::Init::kUninit);
  BlockBuf blk(4);
  c.write_block(a, 0, blk);
  std::vector<Word> first = c.device().raw(0);
  c.touch_block(a, 0);  // same contents, fresh nonce
  std::vector<Word> second = c.device().raw(0);
  EXPECT_NE(first, second) << "re-encryption must be indistinguishable from a new write";
  BlockBuf got;
  c.read_block(a, 0, got);
  EXPECT_EQ(got, blk);
}

TEST(Client, EmptyInitWritesEmptyBlocks) {
  Client c(test::params(4, 32));
  ExtArray a = c.alloc(16, Client::Init::kEmpty);
  auto all = c.peek(a);
  for (const Record& r : all) EXPECT_TRUE(r.is_empty());
  EXPECT_EQ(c.stats().writes, 4u);  // counted initialization
}

TEST(Client, RecordRangeStraddlesBlocks) {
  Client c(test::params(4, 64));
  ExtArray a = c.alloc(16, Client::Init::kEmpty);
  std::vector<Record> in = {{1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}};
  c.write_records(a, 2, in);  // covers blocks 0 and 1
  std::vector<Record> out(5);
  c.read_records(a, 2, out);
  EXPECT_EQ(out, in);
  // Neighbors preserved by the read-modify-write.
  auto all = c.peek(a);
  EXPECT_TRUE(all[0].is_empty());
  EXPECT_TRUE(all[1].is_empty());
  EXPECT_TRUE(all[7].is_empty());
}

TEST(Client, PokePeekBypassCounters) {
  Client c(test::params(4, 32));
  ExtArray a = c.alloc(8, Client::Init::kUninit);
  auto v = test::iota_records(8);
  c.reset_stats();
  c.poke(a, v);
  EXPECT_EQ(c.peek(a), v);
  EXPECT_EQ(c.stats().total(), 0u);
  EXPECT_EQ(c.device().trace().size(), 0u);
}

TEST(CacheMeter, TracksPeakAndStrictThrows) {
  CacheMeter m(100, /*strict=*/true);
  {
    CacheLease l1(m, 60);
    EXPECT_EQ(m.in_use(), 60u);
    { CacheLease l2(m, 30); EXPECT_EQ(m.peak(), 90u); }
    EXPECT_EQ(m.in_use(), 60u);
    EXPECT_THROW(CacheLease l3(m, 50), std::runtime_error);
  }
  CacheMeter lax(100, /*strict=*/false);
  CacheLease big(lax, 500);
  EXPECT_EQ(lax.peak(), 500u);  // recorded, not fatal
}

TEST(CacheMeter, LeaseResize) {
  CacheMeter m(100, false);
  CacheLease l(m, 10);
  l.resize(40);
  EXPECT_EQ(m.in_use(), 40u);
  l.resize(5);
  EXPECT_EQ(m.in_use(), 5u);
}

TEST(TraceChecker, DetectsDataDependentAccess) {
  // A deliberately NON-oblivious algorithm: touch block (first key mod n).
  auto leaky = [](Client& c, const ExtArray& a) {
    BlockBuf blk;
    c.read_block(a, 0, blk);
    c.read_block(a, blk[0].key % a.num_blocks(), blk);
  };
  auto result = obliv::check_oblivious(test::params(4, 64), 64,
                                       obliv::canonical_inputs(1), leaky, true);
  EXPECT_FALSE(result.oblivious);
  EXPECT_FALSE(result.diagnosis.empty());
}

TEST(TraceChecker, AcceptsScan) {
  auto scan = [](Client& c, const ExtArray& a) {
    BlockBuf blk;
    for (std::uint64_t i = 0; i < a.num_blocks(); ++i) c.read_block(a, i, blk);
  };
  auto result = obliv::check_oblivious(test::params(4, 64), 64,
                                       obliv::canonical_inputs(1), scan);
  EXPECT_TRUE(result.oblivious);
  EXPECT_EQ(result.runs.size(), 6u);
}

}  // namespace
}  // namespace oem
