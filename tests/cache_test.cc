// CachingBackend suite: LRU write-back semantics (hits absorb inner ops,
// writes reach the store below only on eviction or flush, dirty neighbors
// coalesce into one batched write-back), split-phase forwarding over a
// remote store, stack-order validation (the cache must sit above
// encryption), and the Session::Builder::cache validation satellites.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "api/session.h"
#include "extmem/backend.h"
#include "extmem/io_engine.h"
#include "extmem/remote.h"
#include "server/server.h"
#include "test_util.h"

namespace oem {
namespace {

constexpr std::size_t kBw = 4;

LatencyProfile counting_profile() {
  LatencyProfile p;
  p.per_op_ns = 1;
  p.per_word_ns = 0;
  p.real_sleep = false;  // pure op counter, no delay
  return p;
}

/// cache(capacity) over a counting latency decorator over mem: the latency
/// layer's ops() counter is exactly "inner ops the cache did not absorb".
struct CacheRig {
  explicit CacheRig(std::size_t capacity) {
    auto counted = latency_backend(mem_backend(), counting_profile());
    backend = caching_backend(std::move(counted), capacity)(kBw);
    cache = dynamic_cast<CachingBackend*>(backend.get());
    counter = dynamic_cast<LatencyBackend*>(&cache->inner());
  }
  std::vector<Word> block(Word salt) const { return std::vector<Word>(kBw, salt); }

  std::unique_ptr<StorageBackend> backend;
  CachingBackend* cache = nullptr;
  LatencyBackend* counter = nullptr;
};

TEST(CachingBackend, ReadsHitAfterFirstTouchAndAbsorbInnerOps) {
  CacheRig rig(8);
  ASSERT_TRUE(rig.backend->resize(8).ok());
  const std::vector<std::uint64_t> ids = {0, 1, 2, 3};
  std::vector<Word> buf(ids.size() * kBw);
  ASSERT_TRUE(rig.backend->read_many(ids, buf).ok());
  const std::uint64_t cold_ops = rig.counter->ops();
  EXPECT_EQ(rig.cache->stats().misses, 4u);

  // Same blocks again: served from the cache, the inner store sees nothing.
  ASSERT_TRUE(rig.backend->read_many(ids, buf).ok());
  EXPECT_EQ(rig.counter->ops(), cold_ops) << "a re-touched read reached the inner store";
  EXPECT_EQ(rig.cache->stats().hits, 4u);
  EXPECT_DOUBLE_EQ(rig.cache->stats().hit_rate(), 0.5);
}

TEST(CachingBackend, WritesAbsorbedUntilEvictionThenWrittenBack) {
  CacheRig rig(4);
  ASSERT_TRUE(rig.backend->resize(16).ok());
  for (std::uint64_t b = 0; b < 4; ++b)
    ASSERT_TRUE(rig.backend->write(b, rig.block(100 + b)).ok());
  EXPECT_EQ(rig.counter->ops(), 0u) << "absorbed writes must not reach the inner store";
  EXPECT_EQ(rig.cache->stats().absorbed_writes, 4u);

  // The inner store still reads zero for an absorbed block (probed through
  // the mem BELOW the op counter, so the probe itself is not counted).
  std::vector<Word> raw(kBw, 99);
  ASSERT_TRUE(rig.counter->inner().read(0, raw).ok());
  EXPECT_EQ(raw, std::vector<Word>(kBw, 0));

  // A fifth distinct block evicts the LRU victim (block 0) -- and because
  // blocks 1..3 are consecutive dirty neighbors, the whole run {0,1,2,3}
  // goes back in ONE coalesced inner write.
  ASSERT_TRUE(rig.backend->write(8, rig.block(200)).ok());
  EXPECT_EQ(rig.cache->stats().evictions, 1u);
  EXPECT_EQ(rig.cache->stats().writebacks, 4u);
  EXPECT_EQ(rig.cache->stats().writeback_ops, 1u);
  EXPECT_EQ(rig.counter->ops(), 1u);

  // The written-back victim re-reads correctly (a fresh miss from inner).
  std::vector<Word> out(kBw);
  ASSERT_TRUE(rig.backend->read(0, out).ok());
  EXPECT_EQ(out, rig.block(100));

  // Blocks 2..3 stayed cached and CLEAN after the coalesced write-back (the
  // read of 0 evicted clean block 1 already): cycling them out with two more
  // cold reads must not write anything again.
  for (std::uint64_t b = 9; b < 11; ++b)
    ASSERT_TRUE(rig.backend->read(b, out).ok());
  EXPECT_EQ(rig.cache->stats().writeback_ops, 1u)
      << "clean survivors of a coalesced write-back were written again";
}

TEST(CachingBackend, FlushWritesBackAllDirtyOnceAndIsIdempotent) {
  CacheRig rig(8);
  ASSERT_TRUE(rig.backend->resize(8).ok());
  ASSERT_TRUE(rig.backend->write(2, rig.block(7)).ok());
  ASSERT_TRUE(rig.backend->write(5, rig.block(8)).ok());
  ASSERT_TRUE(rig.cache->flush().ok());
  EXPECT_EQ(rig.cache->stats().writebacks, 2u);
  EXPECT_EQ(rig.counter->ops(), 1u) << "flush must batch all dirty blocks";

  std::vector<Word> raw(kBw);
  ASSERT_TRUE(rig.counter->inner().read(5, raw).ok());  // uncounted probe
  EXPECT_EQ(raw, rig.block(8));

  // Nothing dirty left: a second flush is free, and the blocks stay cached.
  ASSERT_TRUE(rig.cache->flush().ok());
  EXPECT_EQ(rig.counter->ops(), 1u);
  const std::uint64_t hits = rig.cache->stats().hits;
  std::vector<Word> out(kBw);
  ASSERT_TRUE(rig.backend->read(2, out).ok());
  EXPECT_EQ(out, rig.block(7));
  EXPECT_EQ(rig.cache->stats().hits, hits + 1);
}

TEST(CachingBackend, DestructorFlushesDirtyBlocksToTheStoreBelow) {
  // The server outlives the cache, so it can witness the farewell flush.
  RemoteServer server;
  ASSERT_TRUE(server.health().ok()) << server.health();
  RemoteBackendOptions ropts;
  ropts.host = server.host();
  ropts.port = server.port();
  ropts.store_id = 9;
  {
    auto cache = caching_backend(remote_backend(ropts), 4)(kBw);
    ASSERT_TRUE(cache->resize(4).ok());
    ASSERT_TRUE(cache->write(3, std::vector<Word>(kBw, 77)).ok());
    std::vector<Word> server_view;
    ASSERT_TRUE(server.peek_store(9, 3, &server_view).ok());
    EXPECT_EQ(server_view, std::vector<Word>(kBw, 0)) << "write was not absorbed";
  }
  std::vector<Word> server_view;
  ASSERT_TRUE(server.peek_store(9, 3, &server_view).ok());
  EXPECT_EQ(server_view, std::vector<Word>(kBw, 77))
      << "the destructor did not flush the dirty block";
}

TEST(CachingBackend, ShrinkDropsCachedBlocksSoRegrowReadsZero) {
  CacheRig rig(8);
  ASSERT_TRUE(rig.backend->resize(8).ok());
  ASSERT_TRUE(rig.backend->write(6, rig.block(5)).ok());  // dirty, cached
  ASSERT_TRUE(rig.backend->resize(4).ok());               // 6 is shrunk away
  ASSERT_TRUE(rig.backend->resize(8).ok());
  std::vector<Word> out(kBw, 1);
  ASSERT_TRUE(rig.backend->read(6, out).ok());
  EXPECT_EQ(out, std::vector<Word>(kBw, 0))
      << "a shrunk-away dirty block resurfaced from the cache";
}

TEST(CachingBackend, CapacityZeroIsRejectedAtHealth) {
  auto backend = caching_backend(mem_backend(), 0)(kBw);
  EXPECT_EQ(backend->health().code(), StatusCode::kInvalidArgument);
  std::vector<Word> out(kBw);
  EXPECT_FALSE(backend->resize(4).ok()) << "an unhealthy backend must fail every op";
}

TEST(CachingBackend, EncryptionAboveTheCacheIsRejected) {
  // Wrong order: encrypted(cache(mem)) would cache ciphertext.  The health
  // probe rejects it, which is also what Session::Builder::build surfaces.
  auto backend = encrypted_backend(caching_backend(mem_backend(), 8), 0x5eedULL)(kBw);
  EXPECT_EQ(backend->health().code(), StatusCode::kInvalidArgument);
  // Right order: cache(encrypted(mem)) holds plaintext exactly once.
  auto good = caching_backend(encrypted_backend(mem_backend(), 0x5eedULL), 8)(kBw);
  EXPECT_TRUE(good->health().ok()) << good->health();
}

TEST(CachingBackend, SplitPhaseForwardsMissesAndAbsorbsHitsOverRemote) {
  RemoteServer server;
  ASSERT_TRUE(server.health().ok()) << server.health();
  RemoteBackendOptions ropts;
  ropts.host = server.host();
  ropts.port = server.port();
  ropts.store_id = 1;
  auto cache_owner = caching_backend(remote_backend(ropts), 8)(kBw);
  auto* cache = dynamic_cast<CachingBackend*>(cache_owner.get());
  ASSERT_NE(cache, nullptr);
  EXPECT_GT(cache->max_inflight(), 1u)
      << "the cache must forward the inner store's split-phase window";
  ASSERT_TRUE(cache_owner->resize(8).ok());

  // Warm blocks 0..3, leave 4..7 cold.
  std::vector<std::uint64_t> warm = {0, 1, 2, 3};
  std::vector<Word> data(warm.size() * kBw, 11);
  ASSERT_TRUE(cache_owner->write_many(warm, data).ok());

  // Begin two batches back to back (both frames on the wire before either
  // completes): one all-hit (no inner frame), one miss (one inner frame).
  std::vector<Word> hit_out(warm.size() * kBw, 0);
  ASSERT_TRUE(cache_owner->begin_read_many(warm, hit_out).ok());
  const std::vector<std::uint64_t> cold = {4, 6};
  std::vector<Word> cold_out(cold.size() * kBw, 9);
  ASSERT_TRUE(cache_owner->begin_read_many(cold, cold_out).ok());
  // Hits were served at begin time already.
  EXPECT_EQ(hit_out, data);
  ASSERT_TRUE(cache_owner->complete_oldest().ok());
  ASSERT_TRUE(cache_owner->complete_oldest().ok());
  EXPECT_EQ(cold_out, std::vector<Word>(cold.size() * kBw, 0));  // fresh = zero

  // Split-phase writes: cached blocks absorbed, uncached written around.
  const std::uint64_t frames_before = server.frames_served();
  std::vector<Word> wdata(2 * kBw, 33);
  const std::vector<std::uint64_t> cached_ids = {0, 1};
  ASSERT_TRUE(cache_owner->begin_write_many(cached_ids, wdata).ok());  // all cached
  ASSERT_TRUE(cache_owner->complete_oldest().ok());
  EXPECT_EQ(server.frames_served(), frames_before)
      << "an all-hit begun write must not produce a wire frame";
  const std::vector<std::uint64_t> uncached_ids = {5, 7};
  ASSERT_TRUE(cache_owner->begin_write_many(uncached_ids, wdata).ok());
  ASSERT_TRUE(cache_owner->complete_oldest().ok());
  EXPECT_EQ(server.frames_served(), frames_before + 1);

  // The absorbed writes (both the warm-up 11s and the begun 33s) are visible
  // through the cache but never reached the server, which still reads zero.
  std::vector<Word> out(kBw);
  ASSERT_TRUE(cache_owner->read(0, out).ok());
  EXPECT_EQ(out, std::vector<Word>(kBw, 33));
  std::vector<Word> server_view;
  ASSERT_TRUE(server.peek_store(1, 0, &server_view).ok());
  EXPECT_EQ(server_view, std::vector<Word>(kBw, 0))
      << "an absorbed write leaked to the wire";
  // The write-around IS on the server.
  ASSERT_TRUE(server.peek_store(1, 5, &server_view).ok());
  EXPECT_EQ(server_view, std::vector<Word>(kBw, 33));
}

TEST(CachingBackend, CachedSessionSpendsFewerWireOpsOnReTouchingWork) {
  // End-to-end absorption proof at the Session level: one ORAM epoch's
  // access phase against a remote server, cached vs uncached -- identical
  // results, >= 30% fewer wire frames (the E13 bench claim, in miniature).
  std::uint64_t frames[2] = {0, 0};
  std::vector<std::uint64_t> values[2];
  for (int cached = 0; cached < 2; ++cached) {
    RemoteServer server;
    ASSERT_TRUE(server.health().ok());
    auto builder = Session::Builder()
                       .block_records(4)
                       .cache_records(64)
                       .seed(5)
                       .sharded(4)
                       .async_prefetch(true)
                       .pipeline_depth(4)
                       .remote(server.host(), server.port());
    if (cached) builder.cache(64);
    auto built = builder.build();
    ASSERT_TRUE(built.ok()) << built.status();
    Session session = std::move(built).value();
    auto oram = session.open_oram(64, oram::ShuffleKind::kRandomized, /*seed=*/23);
    ASSERT_TRUE(oram.ok()) << oram.status();
    const std::uint64_t before = server.frames_served();
    for (std::uint64_t i = 0; i + 1 < oram->epoch_length(); ++i) {
      auto v = oram->access((i * 5) % 64);
      ASSERT_TRUE(v.ok()) << v.status();
      values[cached].push_back(*v);
    }
    // Charge the cached run its deferred write-backs before counting, so
    // the comparison is end-to-end fair (same as bench_remote E13).
    session.client().device().drain();
    if (CachingBackend* cb = session.client().device().cache_backend())
      ASSERT_TRUE(cb->flush().ok());
    frames[cached] = server.frames_served() - before;
  }
  EXPECT_EQ(values[0], values[1]) << "the cache changed ORAM results";
  EXPECT_LE(frames[1] * 10, frames[0] * 7)
      << "cached epoch spent " << frames[1] << " wire frames vs " << frames[0]
      << " uncached -- less than 30% saved";
}

TEST(CachingBackend, SplitPhaseMissesGainResidencyAtCompletion) {
  // Satellite regression: begun read misses used to scatter into the
  // caller's buffer and vanish -- a split-phase re-touch stream hit 0% while
  // the synchronous path hit 100%.  Misses must be inserted when their
  // completion lands, so the second begun pass over the same blocks is
  // all-hit (no inner frame).
  RemoteServer server;
  ASSERT_TRUE(server.health().ok()) << server.health();
  RemoteBackendOptions ropts;
  ropts.host = server.host();
  ropts.port = server.port();
  ropts.store_id = 2;
  auto cache_owner = caching_backend(remote_backend(ropts), 8)(kBw);
  auto* cache = dynamic_cast<CachingBackend*>(cache_owner.get());
  ASSERT_NE(cache, nullptr);
  ASSERT_TRUE(cache_owner->resize(8).ok());

  const std::vector<std::uint64_t> ids = {0, 1, 2, 3};
  std::vector<Word> out(ids.size() * kBw, 9);
  ASSERT_TRUE(cache_owner->begin_read_many(ids, out).ok());
  ASSERT_TRUE(cache_owner->complete_oldest().ok());
  EXPECT_EQ(cache->stats().misses, 4u);
  EXPECT_EQ(cache->cached_blocks(), 4u)
      << "completed split-phase misses must gain cache residency";

  // The same blocks again, still through the split-phase face: all hits,
  // served at begin, no wire frame.
  const std::uint64_t frames_before = server.frames_served();
  ASSERT_TRUE(cache_owner->begin_read_many(ids, out).ok());
  ASSERT_TRUE(cache_owner->complete_oldest().ok());
  EXPECT_EQ(cache->stats().hits, 4u);
  EXPECT_EQ(server.frames_served(), frames_before)
      << "a re-touched begun read reached the wire";
  EXPECT_DOUBLE_EQ(cache->stats().hit_rate(), 0.5)
      << "split-phase re-touch must hit like the synchronous path";

  // Strided misses (positions interleaved with hits) insert too.
  const std::vector<std::uint64_t> mixed = {1, 5, 2, 7};  // 5 and 7 cold
  std::vector<Word> mixed_out(mixed.size() * kBw, 9);
  ASSERT_TRUE(cache_owner->begin_read_many(mixed, mixed_out).ok());
  ASSERT_TRUE(cache_owner->complete_oldest().ok());
  EXPECT_EQ(cache->cached_blocks(), 6u);

  // Guard: a block whose write-around frame is still in flight must NOT be
  // granted residency by a read completion behind it (the cached copy would
  // go stale when the around-frame lands).
  const std::vector<std::uint64_t> around = {4};
  std::vector<Word> wdata(kBw, 55);
  ASSERT_TRUE(cache_owner->begin_write_many(around, wdata).ok());
  std::vector<Word> readback(kBw, 0);
  ASSERT_TRUE(cache_owner->begin_read_many(around, readback).ok());
  ASSERT_TRUE(cache_owner->complete_oldest().ok());  // the write-around
  ASSERT_TRUE(cache_owner->complete_oldest().ok());  // the read
  EXPECT_EQ(readback, wdata) << "FIFO: the read began after the write";
  // Block 4 may have been skipped (write-around in flight at the read's
  // completion is impossible here since FIFO completed the write first --
  // but residency, if granted, must hold the POST-write bytes).
  std::vector<Word> again(kBw, 0);
  ASSERT_TRUE(cache_owner->read(4, again).ok());
  EXPECT_EQ(again, wdata);
}

TEST(CachingBackend, FlushFailureIsCountedAndLatchedInHealth) {
  // Satellite regression: the destructor's best-effort flush used to drop
  // write-back errors on the floor -- dirty data silently never reached the
  // store.  A failed flush must bump CacheStats::flush_failures and latch
  // the error in health().
  FaultProfile fp;
  fp.seed = 3;
  fp.fail_rate = 1.0;        // every op fails...
  fp.fail_times = 1000000;   // ...and keeps failing past any retry budget
  fp.fail_reads = false;     // only write-backs are interesting here
  auto backend = caching_backend(faulty_backend(mem_backend(), fp), 4)(kBw);
  auto* cache = dynamic_cast<CachingBackend*>(backend.get());
  ASSERT_NE(cache, nullptr);
  ASSERT_TRUE(backend->resize(4).ok());
  ASSERT_TRUE(backend->write(1, std::vector<Word>(kBw, 7)).ok());  // absorbed
  ASSERT_TRUE(cache->health().ok());

  Status st = cache->flush();
  EXPECT_EQ(st.code(), StatusCode::kIo);
  EXPECT_EQ(cache->stats().flush_failures, 1u);
  EXPECT_EQ(cache->health().code(), StatusCode::kIo)
      << "a failed flush must latch into health()";

  // The latch keeps the FIRST error and the count keeps climbing.
  EXPECT_EQ(cache->flush().code(), StatusCode::kIo);
  EXPECT_EQ(cache->stats().flush_failures, 2u);
}

TEST(SessionBuilderCache, FlushStorageSurfacesWriteBackFailures) {
  // The Session-level face of the same satellite: flush_storage() returns
  // the write-back failure and storage_health() stays non-ok after it.
  FaultProfile fp;
  fp.seed = 3;
  fp.fail_rate = 1.0;
  fp.fail_times = 1000000;
  fp.fail_reads = false;
  auto built = Session::Builder()
                   .block_records(4)
                   .cache_records(64)
                   .backend(faulty_backend(nullptr, fp))
                   .cache(16)
                   .build();
  ASSERT_TRUE(built.ok()) << built.status();
  Session session = std::move(built).value();
  ASSERT_TRUE(session.storage_health().ok());
  auto data = session.outsource(test::random_records(16, 3));
  ASSERT_TRUE(data.ok());
  // outsource pokes through the cache; the dirty blocks are still absorbed.
  EXPECT_EQ(session.flush_storage().code(), StatusCode::kIo);
  EXPECT_EQ(session.storage_health().code(), StatusCode::kIo);
}

TEST(SessionBuilderCache, RejectsCacheZero) {
  auto built = Session::Builder().block_records(4).cache_records(64).cache(0).build();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionBuilderCache, ComposesAboveEncryptionAndBuilds) {
  auto built = Session::Builder()
                   .block_records(4)
                   .cache_records(64)
                   .encrypted(0x5eedULL)
                   .cache(16)
                   .sharded(2)
                   .async_prefetch(true)
                   .build();
  ASSERT_TRUE(built.ok()) << built.status();
  Session session = std::move(built).value();
  auto data = session.outsource(test::random_records(64, 3));
  ASSERT_TRUE(data.ok());
  auto rep = session.sort(*data, 7);
  ASSERT_TRUE(rep.ok()) << rep.status();
  auto out = session.retrieve(*data);
  ASSERT_TRUE(out.ok());
  for (std::size_t i = 1; i < out->size(); ++i)
    EXPECT_LE((*out)[i - 1].key, (*out)[i].key);
}

TEST(SessionBuilderCache, MisorderedCustomStackIsRejectedAtBuild) {
  // A custom backend() factory that buries a cache UNDER encryption is the
  // one way to mis-order the stack; build() probes health and refuses.
  auto built = Session::Builder()
                   .block_records(4)
                   .cache_records(64)
                   .backend(encrypted_backend(caching_backend(nullptr, 8), 0x5eedULL))
                   .build();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace oem
