#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "rng/permutation.h"
#include "rng/random.h"
#include "util/stats.h"

namespace oem::rng {
namespace {

TEST(SplitMix, Deterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  std::uint64_t s3 = 43;
  EXPECT_NE(splitmix64(s3), [] { std::uint64_t s = 42; return splitmix64(s); }());
}

TEST(Xoshiro, SeedDeterminism) {
  Xoshiro a(7), b(7), c(8);
  bool any_diff = false;
  for (int i = 0; i < 64; ++i) {
    const auto x = a.next();
    EXPECT_EQ(x, b.next());
    if (x != c.next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Xoshiro, BelowRange) {
  Xoshiro g(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(g.below(bound), bound);
  }
}

TEST(Xoshiro, BelowRoughlyUniform) {
  Xoshiro g(11);
  std::vector<std::uint64_t> counts(16, 0);
  const int draws = 160000;
  for (int i = 0; i < draws; ++i) ++counts[g.below(16)];
  // chi-square with 15 dof: 99.9th percentile ~ 37.7.
  EXPECT_LT(chi_square_uniform(counts), 45.0);
}

TEST(Xoshiro, BernoulliMean) {
  Xoshiro g(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += g.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
  EXPECT_FALSE(g.bernoulli(0.0));
  EXPECT_TRUE(g.bernoulli(1.0));
}

TEST(Xoshiro, SplitIndependentStreams) {
  Xoshiro a(9);
  Xoshiro child = a.split();
  // The child stream should not replay the parent stream.
  bool differs = false;
  Xoshiro b(9);
  b.next();  // align with the split() draw
  for (int i = 0; i < 16; ++i)
    if (child.next() != b.next()) differs = true;
  EXPECT_TRUE(differs);
}

TEST(FisherYates, ProducesPermutation) {
  Xoshiro g(13);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  shuffle(v, g);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 100u);
  EXPECT_EQ(*s.begin(), 0);
  EXPECT_EQ(*s.rbegin(), 99);
}

TEST(FisherYates, UniformOverSmallPermutations) {
  // All 6 permutations of 3 elements should be ~equally likely.
  std::map<std::vector<int>, int> counts;
  Xoshiro g(17);
  const int trials = 60000;
  for (int t = 0; t < trials; ++t) {
    std::vector<int> v = {0, 1, 2};
    shuffle(v, g);
    counts[v]++;
  }
  EXPECT_EQ(counts.size(), 6u);
  for (const auto& [perm, c] : counts)
    EXPECT_NEAR(static_cast<double>(c) / trials, 1.0 / 6.0, 0.01);
}

TEST(FisherYates, DrawsCoinEvenWhenIEqualsJ) {
  // The swap callback must be invoked for every i (coin alignment).
  Xoshiro g(19);
  int calls = 0;
  fisher_yates(10, g, [&](std::uint64_t, std::uint64_t) { ++calls; });
  EXPECT_EQ(calls, 9);
}

class FeistelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FeistelTest, IsBijectionWithInverse) {
  const std::uint64_t n = GetParam();
  FeistelPermutation prp(n, /*key=*/0x1234, 4);
  std::set<std::uint64_t> seen;
  for (std::uint64_t x = 0; x < n; ++x) {
    const std::uint64_t y = prp.apply(x);
    ASSERT_LT(y, n);
    EXPECT_TRUE(seen.insert(y).second) << "collision at " << x;
    EXPECT_EQ(prp.inverse(y), x);
  }
  EXPECT_EQ(seen.size(), n);
}

INSTANTIATE_TEST_SUITE_P(Domains, FeistelTest,
                         ::testing::Values(1, 2, 3, 5, 16, 17, 100, 257, 1024, 1000));

TEST(Feistel, DifferentKeysDifferentPerms) {
  FeistelPermutation a(64, 1), b(64, 2);
  int diff = 0;
  for (std::uint64_t x = 0; x < 64; ++x)
    if (a.apply(x) != b.apply(x)) ++diff;
  EXPECT_GT(diff, 32);
}

}  // namespace
}  // namespace oem::rng
