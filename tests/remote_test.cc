// Remote block store suite: the wire protocol round-trips, per-store
// namespacing, connection-drop recovery (kIo + reconnect under the device's
// RetryPolicy), split-phase wire pipelining, and the EncryptedBackend
// guarantee that the server only ever holds fresh ciphertext.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/session.h"
#include "extmem/client.h"
#include "extmem/io_engine.h"
#include "extmem/remote.h"
#include "server/server.h"
#include "test_util.h"

namespace oem {
namespace {

constexpr std::size_t kBw = 5;

std::vector<Word> pattern(std::uint64_t block, Word salt = 0) {
  std::vector<Word> w(kBw);
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = block * 1000 + i + salt;
  return w;
}

// ---------------------------------------------------------------------------
// Protocol basics.

TEST(RemoteBackend, ConformsLikeAnyBackend) {
  RemoteServer server;
  ASSERT_TRUE(server.health().ok()) << server.health();
  RemoteBackendOptions opts;
  opts.port = server.port();
  RemoteBackend backend(kBw, opts);
  ASSERT_TRUE(backend.health().ok()) << backend.health();

  ASSERT_TRUE(backend.resize(8).ok());
  EXPECT_EQ(backend.num_blocks(), 8u);
  std::vector<Word> out(kBw, 123);
  ASSERT_TRUE(backend.read(7, out).ok());
  for (Word w : out) EXPECT_EQ(w, 0u) << "fresh blocks must read as zero";

  for (std::uint64_t b = 0; b < 8; ++b)
    ASSERT_TRUE(backend.write(b, pattern(b)).ok());
  // Batched, scattered, partly duplicate ids: sequential semantics.
  const std::vector<std::uint64_t> ids = {7, 2, 3, 2, 0};
  std::vector<Word> flat(ids.size() * kBw);
  ASSERT_TRUE(backend.read_many(ids, flat).ok());
  for (std::size_t i = 0; i < ids.size(); ++i)
    for (std::size_t j = 0; j < kBw; ++j)
      EXPECT_EQ(flat[i * kBw + j], pattern(ids[i])[j]) << "batch slot " << i;

  // Shrink then regrow zeroes the shrunk-away region (server-side resize).
  ASSERT_TRUE(backend.resize(2).ok());
  ASSERT_TRUE(backend.resize(8).ok());
  ASSERT_TRUE(backend.read(5, out).ok());
  for (Word w : out) EXPECT_EQ(w, 0u);
  ASSERT_TRUE(backend.read(1, out).ok());
  EXPECT_EQ(out, pattern(1));

  // Out-of-range is a client-side kInvalidArgument (same as every backend).
  EXPECT_EQ(backend.read(8, out).code(), StatusCode::kInvalidArgument);

  // STAT sees the server's geometry.
  std::uint64_t nblocks = 0, bw = 0;
  ASSERT_TRUE(backend.stat(&nblocks, &bw).ok());
  EXPECT_EQ(nblocks, 8u);
  EXPECT_EQ(bw, kBw);
}

TEST(RemoteBackend, StoreIdsAreIndependentNamespaces) {
  RemoteServer server;
  RemoteBackendOptions a_opts, b_opts;
  a_opts.port = b_opts.port = server.port();
  a_opts.store_id = 0;
  b_opts.store_id = 1;
  RemoteBackend a(kBw, a_opts), b(kBw, b_opts);
  ASSERT_TRUE(a.resize(4).ok());
  ASSERT_TRUE(b.resize(4).ok());
  ASSERT_TRUE(a.write(2, pattern(2, 100)).ok());
  ASSERT_TRUE(b.write(2, pattern(2, 200)).ok());
  std::vector<Word> out(kBw);
  ASSERT_TRUE(a.read(2, out).ok());
  EXPECT_EQ(out, pattern(2, 100)) << "store 1's write leaked into store 0";
  ASSERT_TRUE(b.read(2, out).ok());
  EXPECT_EQ(out, pattern(2, 200));
}

TEST(RemoteBackend, HelloRejectsBlockWordsMismatch) {
  RemoteServer server;
  RemoteBackendOptions opts;
  opts.port = server.port();
  RemoteBackend first(kBw, opts);
  ASSERT_TRUE(first.health().ok());
  RemoteBackend second(kBw + 2, opts);  // same store id, different geometry
  Status st = second.health();
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st;
}

TEST(RemoteBackend, ConnectFailureIsIoNotCrash) {
  RemoteBackendOptions opts;
  opts.port = 1;  // nothing listens on port 1
  RemoteBackend backend(kBw, opts);
  EXPECT_EQ(backend.health().code(), StatusCode::kIo);
  std::vector<Word> out(kBw);
  EXPECT_EQ(backend.resize(2).code(), StatusCode::kIo);
}

// ---------------------------------------------------------------------------
// Connection drops: kIo now, transparent reconnect on the next attempt.

TEST(RemoteBackend, ReconnectsAfterDroppedConnection) {
  RemoteServer server;
  RemoteBackendOptions opts;
  opts.port = server.port();
  RemoteBackend backend(kBw, opts);
  ASSERT_TRUE(backend.resize(4).ok());
  ASSERT_TRUE(backend.write(1, pattern(1)).ok());

  server.drop_connections();
  // The drop surfaces as kIo exactly once...
  std::vector<Word> out(kBw);
  Status st = backend.read(1, out);
  EXPECT_EQ(st.code(), StatusCode::kIo) << st;
  // ...and the next attempt reconnects; the store survived server-side.
  ASSERT_TRUE(backend.read(1, out).ok());
  EXPECT_EQ(out, pattern(1));
  EXPECT_GE(backend.reconnects(), 1u);
}

TEST(RemoteBackend, DeviceRetryPolicyAbsorbsTheDrop) {
  RemoteServer server;
  ClientParams p = test::params(4, 64);
  RemoteBackendOptions opts;
  opts.port = server.port();
  p.backend = remote_backend(opts);
  p.io_retry_attempts = 3;  // drop -> kIo -> retry reconnects
  Client client(p);
  ExtArray a = client.alloc_blocks(8, Client::Init::kEmpty);
  client.poke(a, test::iota_records(8 * 4));

  server.drop_connections();
  // The very next counted read succeeds through the retry loop: the failure
  // and the reconnect are both invisible to the caller AND to the trace.
  BlockBuf buf;
  client.read_block(a, 3, buf);
  EXPECT_EQ(buf[0].key, 12u);
  auto* remote = dynamic_cast<RemoteBackend*>(&client.device().backend());
  ASSERT_NE(remote, nullptr);
  EXPECT_GE(remote->reconnects(), 1u);
  EXPECT_GE(client.device().retries(), 1u);
}

// ---------------------------------------------------------------------------
// Split-phase wire pipelining.

TEST(RemoteBackend, PipelinesMultipleFramesInFlight) {
  RemoteServer server;
  RemoteBackendOptions opts;
  opts.port = server.port();
  opts.max_inflight = 8;
  RemoteBackend backend(kBw, opts);
  ASSERT_TRUE(backend.resize(16).ok());
  EXPECT_EQ(backend.max_inflight(), 8u);

  // Begin 4 writes + 4 reads without completing any; FIFO completion must
  // observe the writes (single connection = server applies in frame order).
  std::vector<std::uint64_t> ids(4);
  std::vector<Word> win(4 * kBw);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ids[i] = i;
    const auto w = pattern(i, 7);
    std::copy(w.begin(), w.end(), win.begin() + i * kBw);
  }
  ASSERT_TRUE(backend.begin_write_many(ids, win).ok());
  std::vector<Word> r1(4 * kBw), r2(4 * kBw);
  ASSERT_TRUE(backend.begin_read_many(ids, r1).ok());
  // Overwrite, then read again -- all four frames on the wire at once.
  std::vector<Word> win2 = win;
  for (Word& w : win2) w += 1000;
  ASSERT_TRUE(backend.begin_write_many(ids, win2).ok());
  ASSERT_TRUE(backend.begin_read_many(ids, r2).ok());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(backend.complete_oldest().ok()) << i;
  EXPECT_EQ(r1, win) << "first read must see the first write";
  EXPECT_EQ(r2, win2) << "second read must see the overwrite";
  EXPECT_TRUE(backend.complete_oldest().ok()) << "no outstanding op is a no-op";
}

TEST(RemoteBackend, TransportDeathFailsAllOutstandingThenRecovers) {
  // Responses are held 50ms server-side, so the drop is guaranteed to beat
  // them: BOTH outstanding ops must fail out, in order.
  RemoteServerOptions sopts;
  sopts.response_delay_ns = 50'000'000;
  RemoteServer server(sopts);
  RemoteBackendOptions opts;
  opts.port = server.port();
  opts.max_inflight = 8;
  RemoteBackend backend(kBw, opts);
  ASSERT_TRUE(backend.resize(8).ok());

  std::vector<Word> r1(kBw), r2(kBw), r3(kBw);
  const std::vector<std::uint64_t> one = {1};
  ASSERT_TRUE(backend.begin_read_many(one, r1).ok());
  ASSERT_TRUE(backend.begin_read_many(one, r2).ok());
  server.drop_connections();
  EXPECT_EQ(backend.complete_oldest().code(), StatusCode::kIo);
  EXPECT_EQ(backend.complete_oldest().code(), StatusCode::kIo);
  // With everything failed out, a fresh synchronous op reconnects.
  ASSERT_TRUE(backend.read_many(one, r3).ok());
  EXPECT_GE(backend.reconnects(), 1u);
}

TEST(AsyncRemote, SubmittedOpsPipelineAndReplayAfterDrop) {
  RemoteServer server;
  RemoteBackendOptions opts;
  opts.port = server.port();
  opts.max_inflight = 8;
  auto owner = async_backend(remote_backend(opts))(kBw);
  auto* async = dynamic_cast<AsyncBackend*>(owner.get());
  ASSERT_NE(async, nullptr);
  async->set_retry_attempts(3);
  ASSERT_TRUE(owner->resize(64).ok());

  // A long FIFO chain of dependent writes/reads with a mid-stream drop: the
  // replay path must preserve order, so every read sees its predecessor.
  std::vector<std::vector<Word>> reads(16, std::vector<Word>(kBw));
  AsyncBackend::Ticket last = 0;
  for (std::uint64_t i = 0; i < 16; ++i) {
    std::vector<Word> w(kBw, 100 + i);
    async->submit_write_many({i % 4}, std::move(w));
    last = async->submit_read_many(std::vector<std::uint64_t>{i % 4}, reads[i]);
    if (i == 7) server.drop_connections();
  }
  ASSERT_TRUE(async->wait(last).ok()) << "bounded retries must absorb the drop";
  for (std::uint64_t i = 0; i < 16; ++i)
    EXPECT_EQ(reads[i][0], 100 + i) << "read " << i << " saw a stale write";
  EXPECT_GE(async->retries(), 1u);
}

// ---------------------------------------------------------------------------
// EncryptedBackend: the server only ever holds fresh ciphertext.

TEST(EncryptedBackend, RewritingSamePlaintextYieldsFreshServerBytes) {
  RemoteServer server;
  RemoteBackendOptions opts;
  opts.port = server.port();
  opts.store_id = 9;
  auto owner = encrypted_backend(remote_backend(opts), /*key=*/0x5eed)(kBw);
  ASSERT_TRUE(owner->health().ok());
  ASSERT_TRUE(owner->resize(4).ok());

  const std::vector<Word> plain = pattern(2, 42);
  ASSERT_TRUE(owner->write(2, plain).ok());
  std::vector<Word> held1;
  ASSERT_TRUE(server.peek_store(9, 2, &held1).ok());
  ASSERT_TRUE(owner->write(2, plain).ok());  // same plaintext again
  std::vector<Word> held2;
  ASSERT_TRUE(server.peek_store(9, 2, &held2).ok());

  EXPECT_EQ(held1.size(), kBw + 1) << "stored block = nonce header + payload";
  EXPECT_NE(held1, held2) << "re-encryption of the same value must be fresh";
  for (std::size_t i = 0; i < kBw; ++i) {
    EXPECT_NE(held1[i + 1], plain[i]) << "server held plaintext word " << i;
    EXPECT_NE(held2[i + 1], plain[i]) << "server held plaintext word " << i;
  }
  std::vector<Word> out(kBw);
  ASSERT_TRUE(owner->read(2, out).ok());
  EXPECT_EQ(out, plain) << "decryption must invert the seal";
}

TEST(EncryptedBackend, FreshBlocksStillReadAsZero) {
  auto owner = encrypted_backend(nullptr, /*key=*/7)(kBw);
  ASSERT_TRUE(owner->resize(4).ok());
  std::vector<Word> out(kBw, 9);
  ASSERT_TRUE(owner->read(3, out).ok());
  for (Word w : out) EXPECT_EQ(w, 0u);
  // Shrink-regrow must zero again (the inner nonce word resets to 0).
  ASSERT_TRUE(owner->write(3, pattern(3)).ok());
  ASSERT_TRUE(owner->resize(1).ok());
  ASSERT_TRUE(owner->resize(4).ok());
  ASSERT_TRUE(owner->read(3, out).ok());
  for (Word w : out) EXPECT_EQ(w, 0u);
}

// ---------------------------------------------------------------------------
// End to end through the Session facade.

TEST(RemoteSession, SortsIdenticallyToMemAtDepth8) {
  RemoteServer server;
  const auto input = test::random_records(40 * 4, 3);
  std::vector<std::vector<Record>> results;
  std::vector<std::vector<TraceEvent>> traces;
  for (int remote = 0; remote < 2; ++remote) {
    auto builder = Session::Builder()
                       .block_records(4)
                       .cache_records(64)
                       .seed(5)
                       .pipeline_depth(8)
                       .async_prefetch(remote == 1)
                       .encrypted(0xfeedf00d);
    if (remote) builder.remote(server.host(), server.port());
    auto built = builder.build();
    ASSERT_TRUE(built.ok()) << built.status();
    Session session = std::move(built).value();
    auto data = session.outsource(input);
    ASSERT_TRUE(data.ok());
    session.trace().set_record_events(true);
    session.trace().reset();
    auto rep = session.sort(*data, /*seed=*/11);
    ASSERT_TRUE(rep.ok()) << rep.status();
    auto sorted = session.retrieve(*data);
    ASSERT_TRUE(sorted.ok());
    EXPECT_TRUE(test::padded_sorted(*sorted));
    results.push_back(std::move(*sorted));
    traces.push_back(session.trace().events());
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_TRUE(traces[0] == traces[1])
      << "remote+prefetch at depth 8 diverged from the in-memory trace";
}

TEST(RemoteSession, ConcurrentSessionsNeverAliasServerStores) {
  // Two sessions with identical geometry against ONE server: each build()
  // draws its own store-id namespace, so their blocks must stay disjoint.
  RemoteServer server;
  auto make = [&] {
    auto built = Session::Builder()
                     .block_records(4)
                     .cache_records(64)
                     .remote(server.host(), server.port())
                     .build();
    EXPECT_TRUE(built.ok()) << built.status();
    return std::move(built).value();
  };
  Session a = make(), b = make();
  auto da = a.outsource(test::iota_records(8 * 4));
  auto db = b.outsource(test::random_records(8 * 4, 99));
  ASSERT_TRUE(da.ok() && db.ok());
  auto ra = a.retrieve(*da);
  ASSERT_TRUE(ra.ok());
  EXPECT_EQ(*ra, test::iota_records(8 * 4))
      << "session b's writes leaked into session a's store";
}

TEST(RemoteSession, ShardedRemoteUsesOneConnectionPerShard) {
  RemoteServer server;
  auto built = Session::Builder()
                   .block_records(4)
                   .cache_records(64)
                   .sharded(4)
                   .remote(server.host(), server.port())
                   .build();
  ASSERT_TRUE(built.ok()) << built.status();
  Session session = std::move(built).value();
  auto data = session.outsource(test::random_records(24 * 4, 9));
  ASSERT_TRUE(data.ok());
  auto rep = session.sort(*data);
  ASSERT_TRUE(rep.ok()) << rep.status();
  auto sorted = session.retrieve(*data);
  ASSERT_TRUE(sorted.ok());
  EXPECT_TRUE(test::padded_sorted(*sorted));
  EXPECT_GE(server.connections_accepted(), 4u)
      << "each shard must hold its own connection";
}

}  // namespace
}  // namespace oem
