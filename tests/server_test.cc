// Server subsystem suite: the worker-pool RemoteServer (parallel dispatch,
// PING keep-alives, idle eviction, graceful shutdown with store flushing,
// bidirectional HELLO version policing), the client's reconnect backoff, and
// the real out-of-process oem-server binary via server/subprocess.h.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "extmem/remote.h"
#include "extmem/wire.h"
#include "server/server.h"
#include "server/subprocess.h"
#include "test_util.h"

namespace oem {
namespace {

constexpr std::size_t kBw = 5;

std::vector<Word> pattern(std::uint64_t block, Word salt = 0) {
  std::vector<Word> w(kBw);
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = block * 1000 + i + salt;
  return w;
}

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// ---------------------------------------------------------------------------
// Worker pool: service time overlaps across connections.

/// Runs `clients` concurrent one-read workloads (distinct stores) against a
/// server charging `service_ms` per data frame; returns the wall time.  The
/// sleeps make the scaling claim core-count independent: N workers sleep in
/// parallel even on one hardware thread.
double timed_parallel_reads(std::size_t worker_threads, std::size_t clients,
                            std::uint64_t service_ms) {
  RemoteServerOptions so;
  so.worker_threads = worker_threads;
  so.service_delay_ns = service_ms * 1'000'000;
  RemoteServer server(so);
  EXPECT_TRUE(server.health().ok()) << server.health();
  EXPECT_EQ(server.worker_threads(), worker_threads);

  // Connect + size every store up front (resize carges no service delay),
  // so the timed region holds exactly one service-delayed frame per client.
  std::vector<std::unique_ptr<RemoteBackend>> backends;
  for (std::size_t c = 0; c < clients; ++c) {
    RemoteBackendOptions opts;
    opts.port = server.port();
    opts.store_id = c;
    backends.push_back(std::make_unique<RemoteBackend>(kBw, opts));
    EXPECT_TRUE(backends.back()->resize(4).ok());
  }
  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (std::size_t c = 0; c < clients; ++c)
    threads.emplace_back([&, c] {
      std::vector<Word> out(kBw);
      if (!backends[c]->read(1, out).ok()) failures.fetch_add(1);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  return ms_since(t0);
}

TEST(ServerWorkerPool, ParallelWorkersOverlapServiceTime) {
  // 4 clients x 100ms of service: a single worker serializes (>= 400ms), a
  // 4-worker pool overlaps (~100ms).  Generous margins keep this stable on
  // loaded CI hosts; the enforced gap is still the full 2x the load bench
  // claims.
  const double serial_ms = timed_parallel_reads(/*worker_threads=*/1, 4, 100);
  const double pooled_ms = timed_parallel_reads(/*worker_threads=*/4, 4, 100);
  EXPECT_GE(serial_ms, 380.0) << "serial worker must pay every service delay";
  EXPECT_LE(pooled_ms, serial_ms / 2.0)
      << "worker pool failed to overlap service time: serial " << serial_ms
      << "ms vs pooled " << pooled_ms << "ms";
}

// ---------------------------------------------------------------------------
// Keep-alive and eviction.

TEST(ServerKeepAlive, PingPreventsIdleEviction) {
  RemoteServerOptions so;
  so.worker_threads = 2;
  so.idle_timeout_ms = 300;
  RemoteServer server(so);
  RemoteBackendOptions opts;
  opts.port = server.port();
  RemoteBackend backend(kBw, opts);
  ASSERT_TRUE(backend.resize(4).ok());
  ASSERT_TRUE(backend.write(2, pattern(2)).ok());

  // Stay silent far longer than the idle timeout, but heartbeat under it.
  for (int i = 0; i < 6; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ASSERT_TRUE(backend.ping().ok()) << "heartbeat " << i;
  }
  std::vector<Word> out(kBw);
  EXPECT_TRUE(backend.read(2, out).ok());
  EXPECT_EQ(out, pattern(2));
  EXPECT_EQ(backend.reconnects(), 0u) << "a PINGing client must never be evicted";
  EXPECT_EQ(server.connections_evicted(), 0u);
  EXPECT_GE(server.pings_served(), 6u);
}

TEST(ServerKeepAlive, SilentClientIsEvictedThenReconnectsCleanly) {
  RemoteServerOptions so;
  so.worker_threads = 2;
  so.idle_timeout_ms = 150;
  RemoteServer server(so);
  RemoteBackendOptions opts;
  opts.port = server.port();
  RemoteBackend backend(kBw, opts);
  ASSERT_TRUE(backend.resize(4).ok());
  ASSERT_TRUE(backend.write(1, pattern(1)).ok());

  // Stop PINGing: the server must evict us (idle >> timeout).
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  std::vector<Word> out(kBw);
  EXPECT_EQ(backend.read(1, out).code(), StatusCode::kIo)
      << "the first op after eviction must surface the dead connection";
  EXPECT_GE(server.connections_evicted(), 1u);

  // The next attempt reconnects; the store (and its data) survived.
  ASSERT_TRUE(backend.read(1, out).ok());
  EXPECT_EQ(out, pattern(1));
  EXPECT_EQ(backend.reconnects(), 1u);
}

// ---------------------------------------------------------------------------
// HELLO version policing, both directions.

TEST(ServerHello, RejectsClientWithOldProtocolVersion) {
  RemoteServer server;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  // A v1 client's HELLO: same layout, older version field.
  std::vector<std::uint8_t> hello;
  wire::put_u64(hello, static_cast<std::uint64_t>(wire::Op::kHello));
  wire::put_u64(hello, 1);  // protocol version the server no longer speaks
  wire::put_u64(hello, 7);
  wire::put_u64(hello, kBw);
  ASSERT_TRUE(wire::write_frame(fd, hello));
  std::vector<std::uint8_t> resp;
  ASSERT_TRUE(wire::read_frame(fd, &resp));
  const Status st = wire::parse_status(resp);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("protocol version"), std::string::npos) << st;
  ::close(fd);
}

TEST(ServerHello, ClientRejectsServerWithWrongProtocolVersion) {
  // A fake "future server" that HELLO-acks with a version this client does
  // not speak; the client must refuse the session with kInvalidArgument (a
  // deployment bug, not a retryable transport error).
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(lfd, 1), 0);
  socklen_t alen = sizeof(addr);
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &alen), 0);

  std::thread fake([lfd] {
    const int cfd = ::accept(lfd, nullptr, nullptr);
    if (cfd < 0) return;
    std::vector<std::uint8_t> hello;
    if (wire::read_frame(cfd, &hello)) {
      auto resp = wire::make_response(Status::Ok());
      wire::put_u64(resp, 99);  // a protocol version from the future
      wire::put_u64(resp, 0);   // num_blocks
      wire::write_frame(cfd, resp);
    }
    ::close(cfd);
  });

  RemoteBackendOptions opts;
  opts.port = ntohs(addr.sin_port);
  RemoteBackend backend(kBw, opts);
  const Status st = backend.health();
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("protocol version 99"), std::string::npos) << st;
  fake.join();
  ::close(lfd);
}

// ---------------------------------------------------------------------------
// Graceful shutdown.

/// MemBackend that records whether flush() reached it.
class FlushProbe : public MemBackend {
 public:
  FlushProbe(std::size_t bw, std::atomic<int>* flushes)
      : MemBackend(bw), flushes_(flushes) {}
  Status flush() override {
    flushes_->fetch_add(1);
    return MemBackend::flush();
  }

 private:
  std::atomic<int>* flushes_;
};

TEST(ServerShutdown, FlushesStoresAndPendingResponsesWithoutHanging) {
  std::atomic<int> flushes{0};
  RemoteServerOptions so;
  so.worker_threads = 2;
  so.response_delay_ns = 40'000'000;  // 40ms: responses are queued, not sent
  so.store_factory = [&flushes](std::size_t bw) -> std::unique_ptr<StorageBackend> {
    return std::make_unique<FlushProbe>(bw, &flushes);
  };
  auto server = std::make_unique<RemoteServer>(so);
  RemoteBackendOptions opts;
  opts.port = server->port();
  RemoteBackend backend(kBw, opts);
  ASSERT_TRUE(backend.resize(4).ok());

  // Put split-phase frames in flight, then shut down while their responses
  // are still waiting out the simulated propagation delay.
  std::vector<Word> a(kBw), b(kBw);
  const std::uint64_t ids[1] = {1};
  ASSERT_TRUE(backend.begin_read_many(std::span<const std::uint64_t>(ids, 1), a).ok());
  ASSERT_TRUE(backend.begin_read_many(std::span<const std::uint64_t>(ids, 1), b).ok());

  const auto t0 = Clock::now();
  EXPECT_TRUE(server->shutdown().ok());
  // Frames dispatched before the shutdown complete (delay waived) or fail
  // kIo -- but never wedge the client or the server.
  const Status s1 = backend.complete_oldest();
  const Status s2 = backend.complete_oldest();
  EXPECT_TRUE(s1.ok() || s1.code() == StatusCode::kIo) << s1;
  EXPECT_TRUE(s2.ok() || s2.code() == StatusCode::kIo) << s2;
  EXPECT_LT(ms_since(t0), 3000.0) << "shutdown must be bounded";
  EXPECT_GE(flushes.load(), 1) << "shutdown must flush every store";

  // Idempotent, and the destructor after an explicit shutdown is a no-op.
  EXPECT_TRUE(server->shutdown().ok());
  server.reset();

  // The service is really gone: a fresh connect attempt fails.
  RemoteBackendOptions again = opts;
  again.backoff_initial_us = 0;
  RemoteBackend later(kBw, again);
  EXPECT_EQ(later.health().code(), StatusCode::kIo);
}

// ---------------------------------------------------------------------------
// Reconnect backoff.

TEST(ClientBackoff, RampsWhileServerIsDownAndResetsOnSuccess) {
  // Reserve a port by binding an ephemeral listener, then close it so
  // nothing is listening there.
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t alen = sizeof(addr);
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &alen), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(lfd);

  RemoteBackendOptions opts;
  opts.port = port;
  opts.backoff_initial_us = 1000;
  opts.backoff_max_us = 4000;
  RemoteBackend backend(kBw, opts);

  // First attempt never waits; each further attempt waits out the ramp.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(backend.health().code(), StatusCode::kIo);
  EXPECT_EQ(backend.backoff_waits(), 3u);
  // Jittered delays are in [d/2, d] for d = 1ms, 2ms, 4ms(capped): at least
  // ~3.5ms total, and the cap keeps any single wait under 4ms.
  EXPECT_GE(backend.backoff_waited_us(), 3000u);
  EXPECT_LE(backend.backoff_waited_us(), 12'000u);

  // A server appears on that port: the next attempt succeeds and resets the
  // streak, so later ops pay no backoff.
  RemoteServerOptions so;
  so.port = port;
  RemoteServer server(so);
  ASSERT_TRUE(server.health().ok()) << server.health();
  ASSERT_TRUE(backend.health().ok());
  const std::uint64_t waits_before = backend.backoff_waits();
  ASSERT_TRUE(backend.resize(2).ok());
  std::vector<Word> out(kBw);
  ASSERT_TRUE(backend.read(1, out).ok());
  EXPECT_EQ(backend.backoff_waits(), waits_before)
      << "a healthy connection must not accrue backoff";
}

// ---------------------------------------------------------------------------
// The real out-of-process binary.

TEST(OemServerBinary, ServesASessionAndExitsCleanlyOnSigterm) {
  server::SpawnedServer srv(server::default_server_binary(),
                            {"--backend=mem", "--threads=2"});
  ASSERT_TRUE(srv.health().ok()) << srv.health();

  auto built = Session::Builder()
                   .block_records(4)
                   .cache_records(64)
                   .seed(7)
                   .remote(srv.host(), srv.port())
                   .build();
  ASSERT_TRUE(built.ok()) << built.status();
  Session session = std::move(built).value();
  const auto input = test::random_records(24 * 4, 13);
  auto data = session.outsource(input);
  ASSERT_TRUE(data.ok()) << data.status();
  auto rep = session.sort(*data);
  ASSERT_TRUE(rep.ok()) << rep.status();
  auto sorted = session.retrieve(*data);
  ASSERT_TRUE(sorted.ok());
  EXPECT_TRUE(test::padded_sorted(*sorted));
  EXPECT_TRUE(test::same_multiset(*sorted, input));

  EXPECT_EQ(srv.terminate(), 0) << "SIGTERM must produce a clean exit";
}

TEST(OemServerBinary, FileBackendPersistsAcrossConnections) {
  server::SpawnedServer srv(server::default_server_binary(),
                            {"--backend=file", "--shards=2", "--threads=1"});
  ASSERT_TRUE(srv.health().ok()) << srv.health();
  RemoteBackendOptions opts;
  opts.host = srv.host();
  opts.port = srv.port();
  opts.store_id = 42;
  {
    RemoteBackend writer(kBw, opts);
    ASSERT_TRUE(writer.resize(8).ok());
    for (std::uint64_t b = 0; b < 8; ++b)
      ASSERT_TRUE(writer.write(b, pattern(b, 7)).ok());
  }  // connection closes; the store (sharded files) lives server-side
  RemoteBackend reader(kBw, opts);
  // A fresh client learns the store's size from STAT and adopts it with a
  // same-size (data-preserving) resize before reading.
  std::uint64_t blocks = 0, bw = 0;
  ASSERT_TRUE(reader.stat(&blocks, &bw).ok());
  EXPECT_EQ(blocks, 8u);
  EXPECT_EQ(bw, kBw);
  ASSERT_TRUE(reader.resize(blocks).ok());
  std::vector<Word> out(kBw);
  for (std::uint64_t b = 0; b < 8; ++b) {
    ASSERT_TRUE(reader.read(b, out).ok());
    EXPECT_EQ(out, pattern(b, 7)) << "block " << b;
  }
  EXPECT_EQ(srv.terminate(), 0);
}

}  // namespace
}  // namespace oem
