// oem::Session facade tests: builder validation, Result<T> plumbing, and the
// typed algorithm entry points on all three backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "api/session.h"
#include "test_util.h"

namespace oem {
namespace {

Session make_session(std::size_t B = 4, std::uint64_t M = 64) {
  auto built = Session::Builder().block_records(B).cache_records(M).seed(3).build();
  EXPECT_TRUE(built.ok()) << built.status();
  return std::move(built).value();
}

TEST(SessionBuilder, RejectsInvalidParameters) {
  auto no_b = Session::Builder().block_records(0).cache_records(64).build();
  ASSERT_FALSE(no_b.ok());
  EXPECT_EQ(no_b.status().code(), StatusCode::kInvalidArgument);

  auto small_m = Session::Builder().block_records(16).cache_records(16).build();
  ASSERT_FALSE(small_m.ok());
  EXPECT_EQ(small_m.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(small_m.status().message().find("M >= 2B"), std::string::npos);
}

TEST(SessionBuilder, RejectsIncompatibleCombos) {
  auto base = [] {
    return Session::Builder().block_records(4).cache_records(64);
  };

  // sharded(0): striping over zero stores is meaningless.
  auto zero_shards = base().sharded(0).build();
  ASSERT_FALSE(zero_shards.ok());
  EXPECT_EQ(zero_shards.status().code(), StatusCode::kInvalidArgument);

  // pipeline_depth(0): the window ring needs at least one slot.
  auto zero_depth = base().pipeline_depth(0).build();
  ASSERT_FALSE(zero_depth.ok());
  EXPECT_EQ(zero_depth.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(zero_depth.status().message().find("pipeline_depth"), std::string::npos);

  // remote() + file_backed(path): the client must not dictate the server's
  // storage -- regardless of call order.
  FileBackendOptions file_opts;
  file_opts.path = "/tmp/oem_conflict.bin";
  auto remote_then_file =
      base().remote("127.0.0.1", 4242).file_backed(file_opts).build();
  ASSERT_FALSE(remote_then_file.ok());
  EXPECT_EQ(remote_then_file.status().code(), StatusCode::kInvalidArgument);
  auto file_then_remote =
      base().file_backed(file_opts).remote("127.0.0.1", 4242).build();
  ASSERT_FALSE(file_then_remote.ok());
  EXPECT_EQ(file_then_remote.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(file_then_remote.status().message().find("remote()"), std::string::npos);

  // remote() + backend(...): same reasoning.
  auto remote_custom =
      base().backend(mem_backend()).remote("127.0.0.1", 4242).build();
  ASSERT_FALSE(remote_custom.ok());
  EXPECT_EQ(remote_custom.status().code(), StatusCode::kInvalidArgument);

  // Any explicit local storage selection conflicts, path or not: a silent
  // fallback to a temp file/RAM would discard the named endpoint.
  auto remote_tempfile = base().remote("127.0.0.1", 4242).file_backed().build();
  ASSERT_FALSE(remote_tempfile.ok());
  EXPECT_EQ(remote_tempfile.status().code(), StatusCode::kInvalidArgument);
  auto remote_mem = base().in_memory().remote("127.0.0.1", 4242).build();
  ASSERT_FALSE(remote_mem.ok());
  EXPECT_EQ(remote_mem.status().code(), StatusCode::kInvalidArgument);

  // remote() needs a real endpoint.
  auto no_host = base().remote("", 4242).build();
  ASSERT_FALSE(no_host.ok());
  EXPECT_EQ(no_host.status().code(), StatusCode::kInvalidArgument);
  auto no_port = base().remote("127.0.0.1", 0).build();
  ASSERT_FALSE(no_port.ok());
  EXPECT_EQ(no_port.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionBuilder, RemoteConnectFailureSurfacesAsIo) {
  // Port 1 refuses connections: build() must probe and report kIo, exactly
  // like an unopenable file path.
  auto built = Session::Builder()
                   .block_records(4)
                   .cache_records(64)
                   .remote("127.0.0.1", 1)
                   .build();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kIo);
}

TEST(SessionBuilder, SurfacesBackendOpenFailureAsIo) {
  FileBackendOptions opts;
  opts.path = "/nonexistent-dir-oem/blocks.bin";
  auto built =
      Session::Builder().block_records(4).cache_records(32).file_backed(opts).build();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kIo);
}

TEST(SessionBuilder, BuildsOnAllBackends) {
  for (int kind = 0; kind < 3; ++kind) {
    Session::Builder b;
    b.block_records(4).cache_records(64);
    if (kind == 1) b.file_backed();
    if (kind == 2) {
      LatencyProfile p;
      p.per_op_ns = 10;
      p.real_sleep = false;
      b.latency(p);
    }
    auto built = b.build();
    ASSERT_TRUE(built.ok()) << built.status();
    EXPECT_STREQ(built->backend_name(), kind == 1 ? "file" : kind == 2 ? "latency" : "mem");
  }
}

TEST(Session, OutsourceSortRetrieveRoundTrip) {
  Session session = make_session();
  const auto input = test::random_records(256, 9);
  auto data = session.outsource(input);
  ASSERT_TRUE(data.ok()) << data.status();

  session.reset_stats();
  auto report = session.sort(*data, /*seed=*/11);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->ios, 0u);
  EXPECT_EQ(report->ios, session.stats().total());

  auto sorted = session.retrieve(*data);
  ASSERT_TRUE(sorted.ok());
  std::vector<Record> expect = input;
  std::sort(expect.begin(), expect.end(), RecordLess{});
  // Theorem 21 sorts by key (ties in arbitrary value order).
  for (std::size_t i = 0; i < expect.size(); ++i)
    EXPECT_EQ((*sorted)[i].key, expect[i].key);
}

TEST(Session, SelectAndQuantilesAgreeWithSortedTruth) {
  Session session = make_session(4, 256);
  const std::uint64_t N = 512;
  const auto input = test::random_records(N, 21);
  auto data = session.outsource(input);
  ASSERT_TRUE(data.ok());

  std::vector<Record> truth = input;
  std::sort(truth.begin(), truth.end(), RecordLess{});

  auto med = session.select(*data, N / 2, /*seed=*/5, core::practical_select_options());
  ASSERT_TRUE(med.ok()) << med.status();
  EXPECT_EQ(med->key, truth[N / 2 - 1].key);

  core::QuantilesOptions qopts;
  qopts.paper_intervals = false;
  auto quarts = session.quantiles(*data, 3, /*seed=*/7, qopts);
  ASSERT_TRUE(quarts.ok()) << quarts.status();
  const auto ranks = core::quantile_ranks(N, 3);
  ASSERT_EQ(quarts->size(), 3u);
  for (std::size_t j = 0; j < 3; ++j)
    EXPECT_EQ((*quarts)[j].key, truth[ranks[j] - 1].key);

  EXPECT_EQ(session.select(*data, 0).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(session.select(*data, N + 1).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(session.quantiles(*data, 0).status().code(), StatusCode::kInvalidArgument);
  // q = 2^64-1 must not overflow the q+1 <= N precondition check.
  EXPECT_EQ(session.quantiles(*data, ~std::uint64_t{0}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Session, CompactKeepsNonEmptyRecordsInOrder) {
  Session session = make_session();
  std::vector<Record> input(256);
  std::vector<Record> expect;
  for (std::size_t i = 0; i < input.size(); ++i) {
    if (i % 3 == 0) {
      input[i] = {i, i * 10};
      expect.push_back(input[i]);
    }  // else: empty record
  }
  auto data = session.outsource(input);
  ASSERT_TRUE(data.ok());
  const std::uint64_t arena_before = session.client().device().num_blocks();
  auto report = session.compact(*data);
  ASSERT_TRUE(report.ok()) << report.status();
  // compact must reclaim its scratch: only the result array (n+1 blocks)
  // may remain in the arena, call after call.
  EXPECT_EQ(session.client().device().num_blocks(),
            arena_before + data->num_blocks() + 1);
  EXPECT_EQ(report->kept, expect.size());
  EXPECT_EQ(report->out.num_records(), expect.size());
  auto dense = session.retrieve(report->out);
  ASSERT_TRUE(dense.ok());
  ASSERT_EQ(dense->size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i)
    EXPECT_EQ((*dense)[i], expect[i]) << "order must be preserved at " << i;
  // The result handle spans its whole allocation, so discard reclaims it.
  EXPECT_TRUE(session.discard(report->out).ok());
  EXPECT_EQ(session.client().device().num_blocks(), arena_before);
}

TEST(Session, OramAccessesVerifyOnFileBackend) {
  auto built = Session::Builder()
                   .block_records(8)
                   .cache_records(8 * 64)
                   .file_backed()
                   .build();
  ASSERT_TRUE(built.ok()) << built.status();
  Session session = std::move(built).value();
  auto oram = session.open_oram(256, oram::ShuffleKind::kDeterministic, 5);
  ASSERT_TRUE(oram.ok()) << oram.status();
  rng::Xoshiro g(13);
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t idx = g.below(256);
    auto got = oram->access(idx);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(*got, oram->expected_value(idx));
  }
  EXPECT_GE(oram->stats().reshuffles, 64u / oram->epoch_length());
}

TEST(Session, SortIdenticalAcrossBackendsViaFacade) {
  const auto input = test::random_records(192, 4);
  std::vector<std::uint64_t> hashes;
  std::vector<std::vector<Record>> outputs;
  for (int kind = 0; kind < 3; ++kind) {
    Session::Builder b;
    b.block_records(4).cache_records(64).seed(3);
    if (kind == 1) b.file_backed();
    if (kind == 2) {
      LatencyProfile p;
      p.per_word_ns = 1;
      p.real_sleep = false;
      b.latency(p);
    }
    auto built = b.build();
    ASSERT_TRUE(built.ok());
    Session session = std::move(built).value();
    auto data = session.outsource(input);
    ASSERT_TRUE(data.ok());
    session.trace().reset();
    auto report = session.sort(*data, /*seed=*/11);
    ASSERT_TRUE(report.ok()) << report.status();
    hashes.push_back(session.trace().hash());
    outputs.push_back(std::move(session.retrieve(*data)).value());
  }
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(hashes[0], hashes[2]);
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_EQ(outputs[0], outputs[2]);
}

TEST(Session, CompactArenaBoundsStorageAcrossSortLoop) {
  // The sort allocates scratch append-only; once the call returns that
  // scratch is discarded, and compact_arena() hands it back to the backend.
  // A service sorting in a loop therefore keeps a bounded footprint instead
  // of growing per call.
  auto built = Session::Builder().block_records(4).cache_records(64).seed(9).build();
  ASSERT_TRUE(built.ok());
  Session session = std::move(built).value();
  auto data = session.outsource(test::random_records(160, 6));
  ASSERT_TRUE(data.ok());
  const std::uint64_t baseline = session.arena_blocks();

  std::uint64_t after_first_compact = 0;
  for (int iter = 0; iter < 4; ++iter) {
    auto report = session.sort(*data);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_GT(session.arena_blocks(), baseline)
        << "sort scratch should show up before compaction";
    const std::uint64_t freed = session.compact_arena();
    EXPECT_GT(freed, 0u);
    if (iter == 0) {
      after_first_compact = session.arena_blocks();
    } else {
      EXPECT_EQ(session.arena_blocks(), after_first_compact)
          << "iteration " << iter << ": the sort loop must not grow storage";
    }
  }
  EXPECT_EQ(session.arena_blocks(), baseline)
      << "all sort scratch is trailing and must be reclaimed";

  // The data is still intact and sorted after compaction.
  auto out = session.retrieve(*data);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(test::padded_sorted(*out));
}

TEST(Session, ShardedPrefetchSessionSortsCorrectly) {
  auto built = Session::Builder()
                   .block_records(4)
                   .cache_records(64)
                   .seed(3)
                   .sharded(4)
                   .async_prefetch(true)
                   .build();
  ASSERT_TRUE(built.ok()) << built.status();
  Session session = std::move(built).value();
  EXPECT_STREQ(session.backend_name(), "async");
  auto input = test::random_records(192, 8);
  auto data = session.outsource(input);
  ASSERT_TRUE(data.ok());
  auto report = session.sort(*data);
  ASSERT_TRUE(report.ok()) << report.status();
  auto out = session.retrieve(*data);
  ASSERT_TRUE(out.ok());
  std::sort(input.begin(), input.end(), RecordLess{});
  input.resize(out->size(), Record{});
  std::sort(input.begin(), input.end(), RecordLess{});
  EXPECT_EQ(*out, input);
}

TEST(ResultType, CarriesValueOrStatus) {
  Result<int> ok_result(42);
  ASSERT_TRUE(ok_result.ok());
  EXPECT_EQ(*ok_result, 42);
  EXPECT_EQ(ok_result.value_or(0), 42);

  Result<int> err_result(Status::Io("disk on fire"));
  ASSERT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.status().code(), StatusCode::kIo);
  EXPECT_EQ(err_result.value_or(-1), -1);
}

TEST(StatusType, IoCodeAndPrinting) {
  const Status st = Status::Io("pread failed");
  EXPECT_EQ(st.code(), StatusCode::kIo);
  EXPECT_EQ(st.ToString(), "IO: pread failed");
  std::ostringstream os;
  os << st;
  EXPECT_EQ(os.str(), "IO: pread failed");
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  std::ostringstream os2;
  os2 << Status::WhpFailure("unlucky");
  EXPECT_EQ(os2.str(), "WHP_FAILURE: unlucky");
}

}  // namespace
}  // namespace oem
