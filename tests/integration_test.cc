// Cross-module integration and failure-injection tests.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/butterfly.h"
#include "core/consolidate.h"
#include "core/loose_compact.h"
#include "core/oblivious_sort.h"
#include "core/quantiles.h"
#include "core/select.h"
#include "core/sparse_compact.h"
#include "sortnet/external_sort.h"
#include "test_util.h"

namespace oem::core {
namespace {

TEST(FailureSweep, RepairsInjectedChildFailures) {
  // Scramble two children's outputs at the sweep level; the sweep must
  // restore them from the (intact) child inputs so the final result is a
  // correct padded sort.
  Client client(test::params(4, 4 * 16));  // m = 16, q = 2
  const std::uint64_t N = 4 * 30000;
  auto v = test::random_records(N, 77);
  ExtArray a = client.alloc(N, Client::Init::kUninit);
  client.poke(a, v);
  ObliviousSortOptions opts;
  opts.min_recursive_blocks = 512;
  opts.paper_dense_rule = false;  // engage the recursive pipeline at lab scale
  opts.debug_fail_children_mask = 0b101;  // children 0 and 2 fail
  ExtArray out;
  ObliviousSortResult res = oblivious_sort_padded(client, a, &out, 3, opts);
  ASSERT_TRUE(res.status.ok()) << res.status.message();
  EXPECT_GE(res.stats.sweep_repairs, 2u);
  auto padded = client.peek(out);
  EXPECT_TRUE(test::same_multiset(padded, v)) << "sweep lost records";
  EXPECT_TRUE(test::keys_nondecreasing(test::non_empty(padded)));
}

TEST(FailureSweep, TooManyFailuresIsReportedNotSilent) {
  Client client(test::params(4, 4 * 16));
  const std::uint64_t N = 4 * 30000;
  ExtArray a = client.alloc(N, Client::Init::kUninit);
  client.poke(a, test::random_records(N, 7));
  ObliviousSortOptions opts;
  opts.min_recursive_blocks = 512;
  opts.paper_dense_rule = false;
  opts.debug_fail_children_mask = 0b111;  // three failures > two slots
  ExtArray out;
  ObliviousSortResult res = oblivious_sort_padded(client, a, &out, 3, opts);
  EXPECT_FALSE(res.status.ok());
}

TEST(CacheBudget, CoreAlgorithmsStayWithinM) {
  // The point of the paper is M << N; verify the carefully-leased
  // algorithms' peak private-memory use never exceeds the declared M.
  struct Case {
    std::string name;
    std::function<void(Client&, const ExtArray&)> run;
    std::size_t B;
    std::uint64_t M;
    std::uint64_t records;
  };
  std::vector<Case> cases = {
      {"consolidate", [](Client& c, const ExtArray& a) {
         consolidate(c, a, nonempty_pred());
       }, 8, 128, 8 * 512},
      {"ext_sort", [](Client& c, const ExtArray& a) {
         sortnet::ext_oblivious_sort(c, a);
       }, 8, 128, 8 * 512},
      {"butterfly", [](Client& c, const ExtArray& a) {
         tight_compact_blocks(c, a, block_nonempty_pred());
       }, 8, 128, 8 * 512},
      {"loose_compact", [](Client& c, const ExtArray& a) {
         loose_compact_blocks(c, a, a.num_blocks() / 5, block_nonempty_pred(), 3);
       }, 8, 256, 8 * 1024},
  };
  for (const auto& cs : cases) {
    Client client(test::params(cs.B, cs.M));
    ExtArray a = client.alloc(cs.records, Client::Init::kUninit);
    client.poke(a, test::random_records(cs.records, 3));
    client.cache().reset_peak();
    cs.run(client, a);
    EXPECT_LE(client.cache().peak(), cs.M)
        << cs.name << " exceeded its private-memory budget";
  }
}

TEST(Integration, SelectAgreesWithSortedOutput) {
  // Sort with Theorem 21, then confirm Theorem 13 selection returns the
  // same order statistics on the unsorted copy.
  Client client(test::params(8, 8 * 256));
  const std::uint64_t N = 20000;
  auto v = test::random_records(N, 5);
  ExtArray unsorted = client.alloc(N, Client::Init::kUninit);
  ExtArray tosort = client.alloc(N, Client::Init::kUninit);
  client.poke(unsorted, v);
  client.poke(tosort, v);

  ASSERT_TRUE(oblivious_sort(client, tosort, 3).status.ok());
  auto sorted = client.peek(tosort);

  for (std::uint64_t k : {std::uint64_t{1}, N / 4, N / 2, N}) {
    auto res = oblivious_select(client, unsorted, k, 9,
                                practical_select_options());
    ASSERT_TRUE(res.status.ok()) << res.status.message();
    EXPECT_EQ(res.value.key, sorted[k - 1].key) << "k=" << k;
  }
}

TEST(Integration, QuantilesSplitColorsEvenly) {
  // Quantile splitters should partition the data into near-equal colors --
  // the property the sort's distribution step relies on.
  Client client(test::params(8, 8 * 256));
  const std::uint64_t N = 32768;
  auto v = test::random_records(N, 13);
  ExtArray a = client.alloc(N, Client::Init::kUninit);
  client.poke(a, v);
  QuantilesOptions opts;
  opts.paper_intervals = false;
  auto res = oblivious_quantiles(client, a, 3, 5, opts);
  ASSERT_TRUE(res.status.ok());
  std::vector<std::uint64_t> counts(4, 0);
  for (const Record& r : v) {
    unsigned c = 0;
    for (const Record& s : res.quantiles)
      if (s.key < r.key) ++c;
    ++counts[c];
  }
  for (unsigned c = 0; c < 4; ++c) {
    EXPECT_NEAR(static_cast<double>(counts[c]), N / 4.0, N / 16.0)
        << "color " << c << " unbalanced";
  }
}

TEST(Integration, CompactThenExpandRoundTripsThroughConsolidation) {
  // consolidate -> tight compact -> expand back to consolidated positions.
  Client client(test::params(4, 64));
  const std::uint64_t N = 512;
  ExtArray a = client.alloc(N, Client::Init::kUninit);
  auto v = test::iota_records(N);
  client.poke(a, v);
  ConsolidateResult cons = consolidate(
      client, a, [](std::uint64_t, const Record& r) { return r.key % 3 == 0; });
  auto consolidated = client.peek(cons.out);

  TightCompactResult tight =
      tight_compact_blocks(client, cons.out, block_nonempty_pred());
  // Where were the occupied blocks?
  std::vector<std::uint64_t> positions;
  for (std::uint64_t b = 0; b < cons.out.num_blocks(); ++b)
    if (!consolidated[b * 4].is_empty()) positions.push_back(b);
  ASSERT_EQ(tight.occupied, positions.size());

  ExtArray back = expand_blocks(client, tight.out, tight.occupied,
                                cons.out.num_blocks(),
                                [&](std::uint64_t i) { return positions[i]; });
  EXPECT_EQ(client.peek(back), consolidated);
}

TEST(Integration, EndToEndOutsourcedWorkflow) {
  // The quickstart scenario as a test: outsource, sort, verify, and confirm
  // Bob's storage never holds plaintext.
  Client client(test::params(8, 8 * 64));
  const std::uint64_t N = 8192;
  std::vector<Record> v(N);
  for (std::uint64_t i = 0; i < N; ++i) v[i] = {0xfeedfacecafeULL + (i * 37 % N), i};
  ExtArray a = client.alloc(N, Client::Init::kUninit);
  client.poke(a, v);

  // No plaintext word on the device equals any record key.
  std::uint64_t leaks = 0;
  for (std::uint64_t b = 0; b < a.num_blocks(); ++b)
    for (Word w : client.device().raw(a.device_block(b)))
      if (w >= 0xfeedfacecafeULL && w < 0xfeedfacecafeULL + N) ++leaks;
  EXPECT_EQ(leaks, 0u);

  ASSERT_TRUE(oblivious_sort(client, a, 21).status.ok());
  auto out = client.peek(a);
  EXPECT_TRUE(test::same_multiset(out, v));
  EXPECT_TRUE(test::keys_nondecreasing(test::non_empty(out)));
}

}  // namespace
}  // namespace oem::core
