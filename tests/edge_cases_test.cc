// Boundary-condition tests: degenerate sizes, B = 1, keys adjacent to the
// empty-cell sentinel, single-element arrays, and all-empty inputs.
#include <gtest/gtest.h>

#include "core/butterfly.h"
#include "core/consolidate.h"
#include "core/oblivious_sort.h"
#include "core/select.h"
#include "core/sparse_compact.h"
#include "sortnet/external_sort.h"
#include "test_util.h"

namespace oem {
namespace {

TEST(EdgeCases, SingleRecordSort) {
  Client client(test::params(4, 32));
  ExtArray a = client.alloc(1, Client::Init::kUninit);
  client.poke(a, std::vector<Record>{{5, 7}});
  sortnet::ext_oblivious_sort(client, a);
  EXPECT_EQ(client.peek(a)[0], (Record{5, 7}));
}

TEST(EdgeCases, AllEmptyArraySorts) {
  Client client(test::params(4, 32));
  ExtArray a = client.alloc(64, Client::Init::kEmpty);
  sortnet::ext_oblivious_sort(client, a);
  for (const Record& r : client.peek(a)) EXPECT_TRUE(r.is_empty());
}

TEST(EdgeCases, BlockSizeOne) {
  // B = 1: every record is its own block; all machinery must still work.
  Client client(test::params(1, 8));
  ExtArray a = client.alloc(32, Client::Init::kUninit);
  auto v = test::random_records(32, 3);
  client.poke(a, v);
  sortnet::ext_oblivious_sort(client, a);
  auto out = client.peek(a);
  EXPECT_TRUE(test::same_multiset(out, v));
  EXPECT_TRUE(test::padded_sorted(out));
}

TEST(EdgeCases, ButterflyBlockSizeOne) {
  Client client(test::params(1, 16));
  ExtArray a = client.alloc(16, Client::Init::kUninit);
  std::vector<Record> v(16);
  for (std::uint64_t i = 0; i < 16; i += 3) v[i] = {i, i};
  client.poke(a, v);
  auto res = core::tight_compact_blocks(client, a, core::block_nonempty_pred());
  EXPECT_EQ(res.occupied, 6u);
  auto out = client.peek(res.out);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(out[i].key, 3 * i);
}

TEST(EdgeCases, KeysAdjacentToSentinel) {
  // The largest representable real key must survive sorting and never be
  // confused with the empty sentinel (~0).
  Client client(test::params(4, 64));
  std::vector<Record> v = {{kEmptyKey - 1, 1}, {0, 2}, {kEmptyKey - 2, 3}, {1, 4}};
  v.resize(32);  // rest empty
  ExtArray a = client.alloc(32, Client::Init::kUninit);
  client.poke(a, v);
  sortnet::ext_oblivious_sort(client, a);
  auto out = test::non_empty(client.peek(a));
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].key, 0u);
  EXPECT_EQ(out[3].key, kEmptyKey - 1);
}

TEST(EdgeCases, SelectOnTwoElements) {
  Client client(test::params(4, 32));
  ExtArray a = client.alloc(2, Client::Init::kUninit);
  client.poke(a, std::vector<Record>{{9, 0}, {3, 1}});
  EXPECT_EQ(core::oblivious_select(client, a, 1, 1).value.key, 3u);
  EXPECT_EQ(core::oblivious_select(client, a, 2, 1).value.key, 9u);
}

TEST(EdgeCases, ConsolidateSingleBlock) {
  Client client(test::params(4, 32));
  ExtArray a = client.alloc(4, Client::Init::kUninit);
  client.poke(a, test::iota_records(4));
  auto res = core::consolidate(client, a, core::nonempty_pred());
  EXPECT_EQ(res.distinguished, 4u);
  EXPECT_EQ(res.out.num_blocks(), 2u);  // n + 1
  auto out = test::non_empty(client.peek(res.out));
  EXPECT_EQ(out, test::iota_records(4));
}

TEST(EdgeCases, SparseCompactZeroDistinguished) {
  Client client(test::params(4, 4096));
  ExtArray a = client.alloc_blocks(32, Client::Init::kEmpty);
  core::SparseCompactOptions opts;
  opts.cost_aware = false;
  auto res = core::sparse_compact_blocks(client, a, 8, core::block_nonempty_pred(),
                                         3, opts);
  EXPECT_TRUE(res.status.ok());
  EXPECT_EQ(res.distinguished, 0u);
  for (const Record& r : client.peek(res.out)) EXPECT_TRUE(r.is_empty());
}

TEST(EdgeCases, ExpandToSamePositions) {
  // Identity expansion: target(i) = i.
  Client client(test::params(4, 64));
  ExtArray a = client.alloc_blocks(8, Client::Init::kUninit);
  auto v = test::random_records(32, 5);
  client.poke(a, v);
  ExtArray out =
      core::expand_blocks(client, a, 8, 8, [](std::uint64_t i) { return i; });
  EXPECT_EQ(client.peek(out), v);
}

TEST(EdgeCases, SortMaximallySkewedValues) {
  // Many duplicates of the extreme keys.
  Client client(test::params(4, 64));
  std::vector<Record> v(1024);
  for (std::uint64_t i = 0; i < v.size(); ++i)
    v[i] = {i % 2 == 0 ? 0 : kEmptyKey - 1, i};
  ExtArray a = client.alloc(v.size(), Client::Init::kUninit);
  client.poke(a, v);
  ASSERT_TRUE(core::oblivious_sort(client, a, 3).status.ok());
  auto out = client.peek(a);
  EXPECT_TRUE(test::same_multiset(out, v));
  EXPECT_TRUE(test::keys_nondecreasing(test::non_empty(out)));
}

TEST(EdgeCases, RecordRangeSingleRecord) {
  Client client(test::params(8, 64));
  ExtArray a = client.alloc(64, Client::Init::kEmpty);
  std::vector<Record> one = {{42, 43}};
  client.write_records(a, 37, one);
  std::vector<Record> got(1);
  client.read_records(a, 37, got);
  EXPECT_EQ(got[0], one[0]);
  EXPECT_TRUE(client.peek(a)[36].is_empty());
  EXPECT_TRUE(client.peek(a)[38].is_empty());
}

TEST(EdgeCases, MinimalCacheTwoBlocks) {
  // The paper's weakest assumption: M = 2B.
  Client client(test::params(4, 8));
  ExtArray a = client.alloc(64, Client::Init::kUninit);
  auto v = test::random_records(64, 9);
  client.poke(a, v);
  sortnet::ext_oblivious_sort(client, a);
  auto out = client.peek(a);
  EXPECT_TRUE(test::same_multiset(out, v));
  EXPECT_TRUE(test::padded_sorted(out));
}

}  // namespace
}  // namespace oem
