// Shared helpers for the oblivem test suite.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "extmem/client.h"
#include "rng/random.h"

namespace oem::test {

inline ClientParams params(std::size_t B, std::uint64_t M, std::uint64_t seed = 1) {
  ClientParams p;
  p.block_records = B;
  p.cache_records = M;
  p.seed = seed;
  return p;
}

/// Random records with keys strictly below the empty sentinel; values are the
/// record's original index (useful for order-preservation checks).
inline std::vector<Record> random_records(std::uint64_t n, std::uint64_t seed) {
  rng::Xoshiro g(seed);
  std::vector<Record> v(n);
  for (std::uint64_t i = 0; i < n; ++i) v[i] = {g.next() >> 1, i};
  return v;
}

inline std::vector<Record> iota_records(std::uint64_t n) {
  std::vector<Record> v(n);
  for (std::uint64_t i = 0; i < n; ++i) v[i] = {i, i};
  return v;
}

/// Multiset equality over the non-empty records of two collections.
inline bool same_multiset(std::vector<Record> a, std::vector<Record> b) {
  auto drop_empty = [](std::vector<Record>& v) {
    v.erase(std::remove_if(v.begin(), v.end(),
                           [](const Record& r) { return r.is_empty(); }),
            v.end());
  };
  drop_empty(a);
  drop_empty(b);
  std::sort(a.begin(), a.end(), RecordLess{});
  std::sort(b.begin(), b.end(), RecordLess{});
  return a == b;
}

inline std::vector<Record> non_empty(const std::vector<Record>& v) {
  std::vector<Record> out;
  for (const Record& r : v)
    if (!r.is_empty()) out.push_back(r);
  return out;
}

inline bool keys_nondecreasing(const std::vector<Record>& v) {
  for (std::size_t i = 1; i < v.size(); ++i)
    if (v[i].key < v[i - 1].key) return false;
  return true;
}

/// Non-empty records form a prefix and are in nondecreasing key order after
/// dropping empties ("padded sorting" in the paper's sense).
inline bool padded_sorted(const std::vector<Record>& v) {
  return keys_nondecreasing(non_empty(v));
}

}  // namespace oem::test
