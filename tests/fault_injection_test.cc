// Fault-injection conformance suite.
//
// The contract under injected storage faults: every algorithm either
// completes with output identical to a fault-free run (bounded retries
// absorbed the failures below the trace recorder) or surfaces
// StatusCode::kIo cleanly through Result<T> -- never a crash, never a
// partially applied batch in the backend, never a leaked arena (storage
// stays reclaimable via compact_arena()).  Faults are deterministic and
// seed-reproducible, so every trial here replays exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "api/session.h"
#include "extmem/io_engine.h"
#include "test_util.h"

namespace oem {
namespace {

FaultProfile profile(std::uint64_t seed, double rate, unsigned fail_times = 1) {
  FaultProfile p;
  p.seed = seed;
  p.fail_rate = rate;
  p.fail_times = fail_times;
  return p;
}

// ---------------------------------------------------------------------------
// FaultyBackend unit semantics.

TEST(FaultyBackend, DeterministicAcrossRuns) {
  constexpr std::size_t kBw = 4;
  std::vector<std::vector<StatusCode>> outcome_runs;
  for (int run = 0; run < 2; ++run) {
    auto backend = faulty_backend(mem_backend(), profile(42, 0.3))(kBw);
    auto* faulty = dynamic_cast<FaultyBackend*>(backend.get());
    ASSERT_NE(faulty, nullptr);
    ASSERT_TRUE(backend->resize(16).ok());
    std::vector<Word> buf(kBw, 7);
    std::vector<StatusCode> outcomes;
    for (std::uint64_t i = 0; i < 64; ++i)
      outcomes.push_back(backend->write(i % 16, buf).code());
    EXPECT_GT(faulty->injected_faults(), 0u) << "rate 0.3 over 64 ops fired nothing";
    outcome_runs.push_back(std::move(outcomes));
  }
  // Same seed, same call sequence => the same ops fail, in the same places.
  EXPECT_EQ(outcome_runs[0], outcome_runs[1]);

  // A different seed produces a different failure pattern.
  auto other = faulty_backend(mem_backend(), profile(43, 0.3))(kBw);
  ASSERT_TRUE(other->resize(16).ok());
  std::vector<Word> buf(kBw, 7);
  std::vector<StatusCode> outcomes;
  for (std::uint64_t i = 0; i < 64; ++i)
    outcomes.push_back(other->write(i % 16, buf).code());
  EXPECT_NE(outcomes, outcome_runs[0]);
}

TEST(FaultyBackend, FailOnceRecoversOnImmediateRetry) {
  constexpr std::size_t kBw = 2;
  // rate = 1: every fresh op fires a fail-once fault; the retry must succeed.
  auto backend = faulty_backend(mem_backend(), profile(1, 1.0, /*fail_times=*/1))(kBw);
  ASSERT_TRUE(backend->resize(4).ok());
  std::vector<Word> in(kBw, 9);
  Status first = backend->write(0, in);
  EXPECT_EQ(first.code(), StatusCode::kIo);
  EXPECT_TRUE(backend->write(0, in).ok()) << "fail-once retry must recover";
  std::vector<Word> out(kBw);
  EXPECT_EQ(backend->read(0, out).code(), StatusCode::kIo);  // next fresh op fails
  EXPECT_TRUE(backend->read(0, out).ok());
  EXPECT_EQ(out, in);
}

TEST(FaultyBackend, FailNExhaustsSmallerRetryBudgets) {
  constexpr std::size_t kBw = 2;
  auto backend = faulty_backend(mem_backend(), profile(1, 1.0, /*fail_times=*/3))(kBw);
  ASSERT_TRUE(backend->resize(4).ok());
  std::vector<Word> in(kBw, 5);
  for (int attempt = 0; attempt < 3; ++attempt)
    EXPECT_EQ(backend->write(0, in).code(), StatusCode::kIo) << attempt;
  EXPECT_TRUE(backend->write(0, in).ok()) << "attempt N+1 must recover";
}

TEST(FaultyBackend, FailedBatchLeavesNoPartialWrites) {
  constexpr std::size_t kBw = 2;
  auto backend = faulty_backend(mem_backend(), profile(1, 1.0, /*fail_times=*/1))(kBw);
  auto* faulty = dynamic_cast<FaultyBackend*>(backend.get());
  ASSERT_TRUE(backend->resize(8).ok());
  // Seed known contents through the inner store directly (no fault gate).
  std::vector<Word> original(kBw, 111);
  for (std::uint64_t b = 0; b < 8; ++b)
    ASSERT_TRUE(faulty->inner().write(b, original).ok());

  const std::vector<std::uint64_t> ids = {1, 3, 5};
  std::vector<Word> batch(ids.size() * kBw, 222);
  ASSERT_EQ(backend->write_many(ids, batch).code(), StatusCode::kIo);
  // The fault fired before the transfer: every block still holds the old
  // bytes -- a failed batch is atomic-by-rejection.
  for (std::uint64_t b = 0; b < 8; ++b) {
    std::vector<Word> out(kBw);
    ASSERT_TRUE(faulty->inner().read(b, out).ok());
    EXPECT_EQ(out, original) << "partial write visible in block " << b;
  }
}

TEST(FaultyBackend, ReadWriteSelectivityAndResizeImmunity) {
  constexpr std::size_t kBw = 2;
  FaultProfile p = profile(3, 1.0, 1);
  p.fail_reads = false;  // writes only
  auto backend = faulty_backend(mem_backend(), p)(kBw);
  ASSERT_TRUE(backend->resize(4).ok());  // resize is never faulted
  std::vector<Word> buf(kBw);
  EXPECT_TRUE(backend->read(0, buf).ok());
  EXPECT_EQ(backend->write(0, buf).code(), StatusCode::kIo);
  EXPECT_TRUE(backend->resize(8).ok());
}

// ---------------------------------------------------------------------------
// BlockDevice retry policy.

TEST(RetryPolicy, DeviceRetriesSyncOpsBelowTraceAndCounters) {
  ClientParams params = test::params(4, 64);
  params.backend = faulty_backend(mem_backend(), profile(5, 1.0, /*fail_times=*/1));
  params.io_retry_attempts = 2;  // exactly enough for fail-once
  Client client(params);
  client.device().trace().set_record_events(true);
  ExtArray a = client.alloc_blocks(4, Client::Init::kEmpty);
  auto data = test::random_records(16, 1);
  client.write_blocks(a, 0, 4, data);
  std::vector<Record> out(16);
  client.read_blocks(a, 0, 4, out);
  EXPECT_EQ(out, data);
  EXPECT_GT(client.device().retries(), 0u);
  // Counters and trace saw each logical op exactly once: retries are
  // invisible to Bob and to the paper's I/O accounting.
  EXPECT_EQ(client.stats().writes, 4u + 4u);  // init + write_blocks
  EXPECT_EQ(client.stats().reads, 4u);
  EXPECT_EQ(client.device().trace().size(), 12u);
}

TEST(RetryPolicy, ExhaustionSurfacesAsIoThroughResult) {
  auto built = Session::Builder()
                   .block_records(4)
                   .cache_records(64)
                   .seed(3)
                   .fault_injection(profile(9, 1.0, /*fail_times=*/8))
                   .io_retries(3)  // < fail_times + 1: cannot recover
                   .build();
  ASSERT_TRUE(built.ok()) << built.status();
  Session session = std::move(built).value();
  auto data = session.outsource(test::random_records(64, 2));
  // Either the upload already failed or the sort does; both must be clean
  // kIo Results, never a crash.
  if (!data.ok()) {
    EXPECT_EQ(data.status().code(), StatusCode::kIo);
    return;
  }
  auto rep = session.sort(*data);
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(rep.status().code(), StatusCode::kIo);
}

TEST(RetryPolicy, LostAsyncWriteSurfacesOnNextSyncOpUnretried) {
  // Regression: a submitted write that exhausts the I/O-thread retries parks
  // its error; the next synchronous device op used to drain that error INTO
  // its own retryable status, retry against the now-clean backend, and
  // return Ok -- silently losing the write.  The parked error must fail the
  // next op unretried, exactly once, and the device must recover after.
  FaultProfile p = profile(6, 1.0, /*fail_times=*/8);
  p.fail_reads = false;  // only the submitted write faults
  BlockDevice dev(4, async_backend(faulty_backend(mem_backend(), p)),
                  RetryPolicy{2});  // 2 < 8 + 1: the write cannot land
  dev.allocate(4);
  const std::vector<std::uint64_t> ids = {0};
  dev.submit_write_many(ids, std::vector<Word>(4, 9));
  // No wait(): the failure is still parked when the sync read arrives.
  std::vector<Word> out(4, 1);
  EXPECT_THROW(dev.read(0, out), std::runtime_error);
  // Reported once; the device recovers, and the lost write left no bytes.
  EXPECT_NO_THROW(dev.read(0, out));
  EXPECT_EQ(out, std::vector<Word>(4, 0));
}

TEST(RetryPolicy, AsyncIoThreadRetriesSubmittedOps) {
  constexpr std::size_t kBw = 2;
  auto owner =
      async_backend(faulty_backend(mem_backend(), profile(4, 1.0, 1)))(kBw);
  auto* async = dynamic_cast<AsyncBackend*>(owner.get());
  ASSERT_NE(async, nullptr);
  async->set_retry_attempts(2);
  ASSERT_TRUE(owner->resize(4).ok());
  async->submit_write_many({0, 1}, std::vector<Word>(2 * kBw, 7));
  std::vector<Word> out(2 * kBw);
  auto t = async->submit_read_many(std::vector<std::uint64_t>{0, 1}, out);
  EXPECT_TRUE(async->wait(t).ok()) << "I/O-thread retries must absorb fail-once";
  EXPECT_EQ(out, std::vector<Word>(2 * kBw, 7));
  EXPECT_GT(async->retries(), 0u);
}

// ---------------------------------------------------------------------------
// Algorithm-level conformance: 100 seeded trials per algorithm.  Fail-once
// faults with a retry budget of 4 must be fully absorbed: identical output,
// identical trace as the fault-free session.

struct TrialConfig {
  const char* name;
  std::size_t shards;
  bool prefetch;
};

constexpr TrialConfig kTrialConfigs[] = {
    {"plain", 1, false},
    {"sharded4", 4, false},
    {"sharded4_prefetch", 4, true},
};

Result<Session> build_session(const TrialConfig& cfg, std::uint64_t fault_seed,
                              double rate) {
  return Session::Builder()
      .block_records(4)
      .cache_records(64)
      .seed(11)
      .sharded(cfg.shards)
      .async_prefetch(cfg.prefetch)
      .fault_injection(fault_seed, rate)
      .build();
}

/// The conformance contract, per trial: the algorithm either completes with
/// output and trace identical to the fault-free reference, or every step
/// that failed did so as a clean kIo Result and the session stays usable.
/// On a single shard, fail-once faults + the retry budget make completion
/// deterministic-guaranteed; on a striped store a retried batch re-rolls the
/// other shards' fault decisions, so exhaustion is possible (and must be
/// clean) -- exactly the two allowed outcomes.
template <typename AlgoFn>
void run_seeded_trials(const char* what, AlgoFn&& algo) {
  for (const TrialConfig& cfg : kTrialConfigs) {
    // Reference run: same session parameters, no faults.
    auto clean = build_session(cfg, 0, 0.0);
    ASSERT_TRUE(clean.ok()) << clean.status();
    std::vector<Record> expected;
    Status ref = algo(*clean, &expected);
    ASSERT_TRUE(ref.ok()) << what << "/" << cfg.name << " fault-free run failed: "
                          << ref;
    const std::uint64_t expected_trace = clean->trace().hash();

    const int trials = cfg.shards == 1 ? 100 : 20;  // full matrix on the cheap config
    for (int trial = 0; trial < trials; ++trial) {
      auto faulty = build_session(cfg, 1000 + trial, 0.05);
      ASSERT_TRUE(faulty.ok()) << faulty.status();
      std::vector<Record> got;
      Status st = algo(*faulty, &got);
      if (st.ok()) {
        EXPECT_EQ(got, expected) << what << "/" << cfg.name << " trial " << trial;
        EXPECT_EQ(faulty->trace().hash(), expected_trace)
            << what << "/" << cfg.name << " trial " << trial
            << ": fault recovery leaked into the trace";
      } else {
        EXPECT_EQ(st.code(), StatusCode::kIo)
            << what << "/" << cfg.name << " trial " << trial
            << ": failure must surface as clean kIo, got " << st;
        EXPECT_EQ(cfg.shards > 1, true)
            << what << ": single-shard fail-once faults must always recover";
        // The session survives the failure: storage reclaims and fresh work
        // goes through (the injected fault train has moved on).
        faulty->compact_arena();
        auto probe = faulty->outsource(test::random_records(8, 1));
        EXPECT_TRUE(probe.ok() || probe.status().code() == StatusCode::kIo);
      }
    }
  }
}

TEST(FaultConformance, SortCompletesIdenticallyUnderFaults) {
  run_seeded_trials("sort", [](Session& s, std::vector<Record>* out) -> Status {
    auto data = s.outsource(test::random_records(32 * 4, 7));
    if (!data.ok()) return data.status();
    auto rep = s.sort(*data, /*seed=*/5);
    if (!rep.ok()) return rep.status();
    auto result = s.retrieve(*data);
    if (!result.ok()) return result.status();
    *out = std::move(*result);
    return Status::Ok();
  });
}

TEST(FaultConformance, CompactCompletesIdenticallyUnderFaults) {
  run_seeded_trials("compact", [](Session& s, std::vector<Record>* out) -> Status {
    std::vector<Record> v(24 * 4);
    for (std::uint64_t i = 0; i < v.size(); i += 3) v[i] = {i, i};
    auto data = s.outsource(v);
    if (!data.ok()) return data.status();
    auto rep = s.compact(*data);
    if (!rep.ok()) return rep.status();
    auto result = s.retrieve(rep->out);
    if (!result.ok()) return result.status();
    *out = std::move(*result);
    return Status::Ok();
  });
}

TEST(FaultConformance, OramAccessSequenceIdenticalUnderFaults) {
  run_seeded_trials("oram", [](Session& s, std::vector<Record>* out) -> Status {
    auto oram = s.open_oram(64, oram::ShuffleKind::kDeterministic, /*seed=*/17);
    if (!oram.ok()) return oram.status();
    for (std::uint64_t i = 0; i <= oram->epoch_length(); ++i) {
      auto v = oram->access((i * 5) % 64);
      if (!v.ok()) return v.status();
      EXPECT_EQ(*v, oram->expected_value((i * 5) % 64));
      out->push_back({i, *v});
    }
    return Status::Ok();
  });
}

// ---------------------------------------------------------------------------
// Arena hygiene after failures: an aborted algorithm call must not leak
// backend storage -- its scratch is recorded as discarded during unwind and
// compact_arena() reclaims it.

TEST(FaultConformance, NoLeakedArenaBlocksAfterFailure) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    FaultProfile p = profile(700 + seed, 0.03, /*fail_times=*/8);
    p.fail_writes = false;  // let the upload through; fault the sort's reads
    auto built = Session::Builder()
                     .block_records(4)
                     .cache_records(64)
                     .seed(21)
                     .fault_injection(p)
                     .io_retries(3)  // < fail_times + 1: first fault is fatal
                     .build();
    ASSERT_TRUE(built.ok()) << built.status();
    Session session = std::move(built).value();
    auto data = session.outsource(test::random_records(32 * 4, 3));
    ASSERT_TRUE(data.ok()) << data.status();
    const std::uint64_t baseline = session.arena_blocks();

    auto rep = session.sort(*data, /*seed=*/5);
    if (!rep.ok()) EXPECT_EQ(rep.status().code(), StatusCode::kIo);
    session.compact_arena();
    EXPECT_EQ(session.arena_blocks(), baseline)
        << "seed " << seed << (rep.ok() ? " (completed)" : " (failed)")
        << ": scratch leaked past compact_arena";
  }
}

}  // namespace
}  // namespace oem
