// Oblivious RAM demo: random access over outsourced memory where the server
// cannot correlate two accesses to the same address -- the paper's §1
// application ("data-oblivious sorting is the bottleneck in the inner loop
// of existing oblivious RAM simulations").
//
//   ./example_oram_demo [--items=1024] [--accesses=200] [--backend=mem|file]
//
// Opens a square-root ORAM through the oem::Session facade, verifies every
// read, and shows the amortized cost split (access protocol vs reshuffle
// inner loop) for both reshuffle sorts.
#include <iostream>

#include "api/session.h"
#include "util/flags.h"

using namespace oem;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::uint64_t items = flags.get_u64("items", 1024);
  const std::uint64_t accesses = flags.get_u64("accesses", 200);
  const std::string backend = flags.get("backend", "mem");
  flags.validate_or_die();

  std::cout << "== square-root ORAM demo ==\n";
  std::cout << items << " items, " << accesses << " random accesses\n\n";

  for (auto kind : {oram::ShuffleKind::kDeterministic, oram::ShuffleKind::kRandomized}) {
    Session::Builder builder;
    builder.block_records(8).cache_records(8 * 256);
    if (backend == "file") {
      builder.file_backed();
    } else if (backend != "mem") {
      std::cerr << "unknown --backend=" << backend << " (mem|file)\n";
      return 2;
    }
    auto built = builder.build();
    if (!built.ok()) {
      std::cerr << "session setup failed: " << built.status() << "\n";
      return 1;
    }
    Session session = std::move(built).value();
    auto oram = session.open_oram(items, kind, 5);
    if (!oram.ok()) {
      std::cerr << "open_oram failed: " << oram.status() << "\n";
      return 1;
    }

    rng::Xoshiro g(17);
    std::uint64_t wrong = 0;
    for (std::uint64_t i = 0; i < accesses; ++i) {
      const std::uint64_t idx = g.below(items);
      auto got = oram->access(idx);
      if (!got.ok()) {
        std::cerr << "access failed: " << got.status() << "\n";
        return 1;
      }
      if (*got != oram->expected_value(idx)) ++wrong;
    }
    const auto& s = oram->stats();
    std::cout << (kind == oram::ShuffleKind::kDeterministic
                      ? "inner loop: deterministic sort (Lemma 2)"
                      : "inner loop: randomized sort (Theorem 21)")
              << "\n";
    std::cout << "  epoch length sqrt(N) = " << oram->epoch_length() << ", reshuffles: "
              << s.reshuffles << "\n";
    std::cout << "  amortized I/O per access: "
              << static_cast<double>(s.access_ios + s.reshuffle_ios) / s.accesses
              << " (access " << static_cast<double>(s.access_ios) / s.accesses
              << " + reshuffle " << static_cast<double>(s.reshuffle_ios) / s.accesses
              << ")\n";
    std::cout << "  wrong reads: " << wrong << "\n\n";
    if (wrong) return 1;
  }
  std::cout << "every access touched a fresh pseudo-random position; repeated\n"
               "logical reads are indistinguishable from distinct ones.\n";
  return 0;
}
