// Private statistics over outsourced data: median and quartiles of a
// sensitive data set (the paper's §1 motivation: health/financial records
// whose access patterns leak as much as their contents).
//
//   ./example_outsourced_median [--records=16384]
//
// Uses Theorem 13 (selection) for the median and Theorem 17 (quantiles) for
// the quartiles, both at O(N/B) I/Os, and shows the I/O bill next to the
// naive oblivious alternative (sort everything).
#include <algorithm>
#include <iostream>

#include "core/quantiles.h"
#include "core/select.h"
#include "extmem/client.h"
#include "sortnet/external_sort.h"
#include "util/flags.h"
#include "util/math.h"

using namespace oem;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::uint64_t N = flags.get_u64("records", 16384);
  const std::size_t B = 8;

  ClientParams params;
  params.block_records = B;
  params.cache_records = 8 * 256;
  Client client(params);

  std::cout << "== private median & quartiles over outsourced records ==\n";
  // Synthetic "lab results": log-normal-ish values.
  ExtArray data = client.alloc(N, Client::Init::kUninit);
  std::vector<Record> v(N);
  rng::Xoshiro g(11);
  for (std::uint64_t i = 0; i < N; ++i) {
    std::uint64_t x = 50 + g.below(100);
    x = x * (1 + g.below(20));  // skewed tail
    v[i] = {x, i};
  }
  client.poke(data, v);

  // Ground truth (the analyst's own check; not part of the protocol).
  std::vector<Record> sorted = v;
  std::sort(sorted.begin(), sorted.end(), RecordLess{});

  // Median by Theorem 13.
  client.reset_stats();
  auto med = core::oblivious_select(client, data, N / 2, 5,
                                    core::practical_select_options());
  const std::uint64_t med_io = client.stats().total();
  std::cout << "median: " << med.value.key << " ("
            << (med.status.ok() ? "ok" : med.status.message()) << ", " << med_io
            << " I/Os)  [truth: " << sorted[N / 2 - 1].key << "]\n";

  // Quartiles by Theorem 17.
  client.reset_stats();
  core::QuantilesOptions qopts;
  qopts.paper_intervals = false;
  auto quart = core::oblivious_quantiles(client, data, 3, 9, qopts);
  const std::uint64_t quart_io = client.stats().total();
  std::cout << "quartiles: ";
  for (const auto& r : quart.quantiles) std::cout << r.key << " ";
  std::cout << "(" << (quart.status.ok() ? "ok" : quart.status.message()) << ", "
            << quart_io << " I/Os)\n";
  auto truth_ranks = core::quantile_ranks(N, 3);
  std::cout << "truth:     ";
  for (auto rk : truth_ranks) std::cout << sorted[rk - 1].key << " ";
  std::cout << "\n\n";

  const std::uint64_t sort_io =
      sortnet::ext_sort_predicted_ios(ceil_div(N, B), params.cache_records / B);
  std::cout << "for reference, sorting the whole data set obliviously costs ~"
            << sort_io << " I/Os\n";

  bool correct = med.status.ok() && med.value.key == sorted[N / 2 - 1].key;
  for (std::size_t j = 0; j < quart.quantiles.size() && correct; ++j)
    correct = quart.quantiles[j].key == sorted[truth_ranks[j] - 1].key;
  std::cout << "all answers exact: " << (correct ? "yes" : "NO") << "\n";
  return correct ? 0 : 1;
}
