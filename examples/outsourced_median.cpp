// Private statistics over outsourced data: median and quartiles of a
// sensitive data set (the paper's §1 motivation: health/financial records
// whose access patterns leak as much as their contents).
//
//   ./example_outsourced_median [--records=16384] [--backend=mem|file]
//
// Uses Theorem 13 (selection) for the median and Theorem 17 (quantiles) for
// the quartiles, both at O(N/B) I/Os through the oem::Session facade, and
// shows the I/O bill next to the naive oblivious alternative (sort
// everything).
#include <algorithm>
#include <iostream>

#include "api/session.h"
#include "sortnet/external_sort.h"
#include "util/flags.h"
#include "util/math.h"

using namespace oem;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::uint64_t N = flags.get_u64("records", 16384);
  const std::string backend = flags.get("backend", "mem");
  flags.validate_or_die();
  const std::size_t B = 8;
  const std::uint64_t M = 8 * 256;

  Session::Builder builder;
  builder.block_records(B).cache_records(M);
  if (backend == "file") {
    builder.file_backed();
  } else if (backend != "mem") {
    std::cerr << "unknown --backend=" << backend << " (mem|file)\n";
    return 2;
  }
  auto built = builder.build();
  if (!built.ok()) {
    std::cerr << "session setup failed: " << built.status() << "\n";
    return 1;
  }
  Session session = std::move(built).value();

  std::cout << "== private median & quartiles over outsourced records ==\n";
  // Synthetic "lab results": log-normal-ish values.
  std::vector<Record> v(N);
  rng::Xoshiro g(11);
  for (std::uint64_t i = 0; i < N; ++i) {
    std::uint64_t x = 50 + g.below(100);
    x = x * (1 + g.below(20));  // skewed tail
    v[i] = {x, i};
  }
  auto data = session.outsource(v);
  if (!data.ok()) {
    std::cerr << "outsource failed: " << data.status() << "\n";
    return 1;
  }

  // Ground truth (the analyst's own check; not part of the protocol).
  std::vector<Record> sorted = v;
  std::sort(sorted.begin(), sorted.end(), RecordLess{});

  // Median by Theorem 13.
  session.reset_stats();
  auto med = session.select(*data, N / 2, 5, core::practical_select_options());
  const std::uint64_t med_io = session.stats().total();
  std::cout << "median: " << (med.ok() ? std::to_string(med->key) : med.status().ToString())
            << " (" << med_io << " I/Os)  [truth: " << sorted[N / 2 - 1].key << "]\n";

  // Quartiles by Theorem 17.
  session.reset_stats();
  core::QuantilesOptions qopts;
  qopts.paper_intervals = false;
  auto quart = session.quantiles(*data, 3, 9, qopts);
  const std::uint64_t quart_io = session.stats().total();
  std::cout << "quartiles: ";
  if (quart.ok())
    for (const auto& r : *quart) std::cout << r.key << " ";
  std::cout << "(" << (quart.ok() ? "ok" : quart.status().ToString()) << ", "
            << quart_io << " I/Os)\n";
  auto truth_ranks = core::quantile_ranks(N, 3);
  std::cout << "truth:     ";
  for (auto rk : truth_ranks) std::cout << sorted[rk - 1].key << " ";
  std::cout << "\n\n";

  const std::uint64_t sort_io =
      sortnet::ext_sort_predicted_ios(ceil_div(N, B), M / B);
  std::cout << "for reference, sorting the whole data set obliviously costs ~"
            << sort_io << " I/Os\n";

  bool correct = med.ok() && med->key == sorted[N / 2 - 1].key;
  if (quart.ok()) {
    for (std::size_t j = 0; j < quart->size() && correct; ++j)
      correct = (*quart)[j].key == sorted[truth_ranks[j] - 1].key;
  } else {
    correct = false;
  }
  std::cout << "all answers exact: " << (correct ? "yes" : "NO") << "\n";
  return correct ? 0 : 1;
}
