// Outsourced-disk defragmentation -- the paper's own motivating use for
// compaction (§3: "the fundamental operation done during disk
// defragmentation ... in an outsourced file system, since users of such
// systems are charged for the space they use").
//
//   ./example_defragmentation [--blocks=512] [--live=0.4]
//
// A fragmented volume (live file blocks scattered among deleted ones) is
// compacted with Theorem 6's butterfly network: tight (pay for exactly the
// live blocks afterwards), order-preserving (files stay contiguous in
// order), and oblivious (the storage provider cannot tell which blocks were
// live, i.e., cannot infer file sizes or deletion patterns).
#include <iostream>

#include "core/butterfly.h"
#include "extmem/client.h"
#include "obliv/trace_check.h"
#include "util/flags.h"

using namespace oem;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::uint64_t n = flags.get_u64("blocks", 512);
  const double live_frac = flags.get_double("live", 0.4);
  const std::size_t B = 8;

  ClientParams params;
  params.block_records = B;
  params.cache_records = 8 * 64;
  Client client(params);

  std::cout << "== oblivious defragmentation ==\n";
  std::cout << "volume: " << n << " blocks, ~" << live_frac * 100 << "% live\n\n";

  // Build a fragmented volume: live blocks carry (file id, offset) records.
  ExtArray volume = client.alloc_blocks(n, Client::Init::kUninit);
  std::vector<Record> flat(n * B);
  rng::Xoshiro g(3);
  std::vector<std::uint64_t> live_order;
  std::uint64_t file = 0;
  for (std::uint64_t b = 0; b < n; ++b) {
    if (g.bernoulli(live_frac)) {
      live_order.push_back(b);
      if (g.bernoulli(0.3)) ++file;  // a new file starts here
      for (std::size_t r = 0; r < B; ++r)
        flat[b * B + r] = {file, b * B + r};
    }
  }
  client.poke(volume, flat);
  std::cout << "live blocks: " << live_order.size() << " scattered over " << n
            << " (" << file + 1 << " files)\n";

  // Defragment: tight order-preserving compaction.
  client.reset_stats();
  core::TightCompactResult res =
      core::tight_compact_blocks(client, volume, core::block_nonempty_pred());
  std::cout << "defrag I/O: " << client.stats().total() << " block accesses ("
            << static_cast<double>(client.stats().total()) / static_cast<double>(n)
            << " per volume block)\n";

  // Verify: the live blocks form a dense prefix, files still contiguous.
  auto out = client.peek(res.out);
  bool ok = res.occupied == live_order.size();
  for (std::size_t i = 0; i < live_order.size() && ok; ++i)
    ok = out[i * B].value == live_order[i] * B;  // original position preserved
  std::cout << "occupied prefix: " << res.occupied << " blocks; order preserved: "
            << (ok ? "yes" : "NO") << "\n";
  std::cout << "storage bill after defrag: " << res.occupied << "/" << n
            << " blocks\n\n";

  // Privacy: the provider cannot distinguish volumes with different live
  // layouts (same size).
  auto check = obliv::check_oblivious(
      params, n * B, obliv::canonical_inputs(2),
      [](Client& c, const ExtArray& a) {
        core::tight_compact_blocks(c, a, [](std::uint64_t, const BlockBuf& blk) {
          return !blk[0].is_empty() && blk[0].key % 2 == 0;  // layout-dependent
        });
      });
  std::cout << "provider's view across different layouts: "
            << (check.oblivious ? "identical traces (oblivious)" : "LEAKS") << "\n";
  return ok && check.oblivious ? 0 : 1;
}
