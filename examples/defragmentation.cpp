// Outsourced-disk defragmentation -- the paper's own motivating use for
// compaction (§3: "the fundamental operation done during disk
// defragmentation ... in an outsourced file system, since users of such
// systems are charged for the space they use").
//
//   ./example_defragmentation [--blocks=512] [--live=0.4] [--backend=mem|file]
//
// A fragmented volume (live file blocks scattered among deleted ones) is
// compacted through oem::Session::compact (Lemma 3 consolidation + Theorem
// 6's butterfly network): tight (pay for exactly the live blocks
// afterwards), order-preserving (files stay contiguous in order), and
// oblivious (the storage provider cannot tell which blocks were live, i.e.,
// cannot infer file sizes or deletion patterns).
#include <iostream>

#include "api/session.h"
#include "core/butterfly.h"
#include "obliv/trace_check.h"
#include "util/flags.h"

using namespace oem;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::uint64_t n = flags.get_u64("blocks", 512);
  const double live_frac = flags.get_double("live", 0.4);
  const std::string backend = flags.get("backend", "mem");
  flags.validate_or_die();
  const std::size_t B = 8;

  Session::Builder builder;
  builder.block_records(B).cache_records(8 * 64);
  if (backend == "file") {
    builder.file_backed();
  } else if (backend != "mem") {
    std::cerr << "unknown --backend=" << backend << " (mem|file)\n";
    return 2;
  }
  auto built = builder.build();
  if (!built.ok()) {
    std::cerr << "session setup failed: " << built.status() << "\n";
    return 1;
  }
  Session session = std::move(built).value();

  std::cout << "== oblivious defragmentation ==\n";
  std::cout << "volume: " << n << " blocks, ~" << live_frac * 100 << "% live ("
            << session.backend_name() << " backend)\n\n";

  // Build a fragmented volume: live blocks carry (file id, offset) records.
  std::vector<Record> flat(n * B);
  rng::Xoshiro g(3);
  std::vector<std::uint64_t> live_order;
  std::uint64_t file = 0;
  for (std::uint64_t b = 0; b < n; ++b) {
    if (g.bernoulli(live_frac)) {
      live_order.push_back(b);
      if (g.bernoulli(0.3)) ++file;  // a new file starts here
      for (std::size_t r = 0; r < B; ++r)
        flat[b * B + r] = {file, b * B + r};
    }
  }
  auto volume = session.outsource(flat);
  if (!volume.ok()) {
    std::cerr << "outsource failed: " << volume.status() << "\n";
    return 1;
  }
  std::cout << "live blocks: " << live_order.size() << " scattered over " << n
            << " (" << file + 1 << " files)\n";

  // Defragment: tight order-preserving compaction of the live records.
  session.reset_stats();
  auto res = session.compact(*volume);
  if (!res.ok()) {
    std::cerr << "compact failed: " << res.status() << "\n";
    return 1;
  }
  std::cout << "defrag I/O: " << res->ios << " block accesses ("
            << static_cast<double>(res->ios) / static_cast<double>(n)
            << " per volume block)\n";

  // Verify: the live blocks form a dense prefix, files still contiguous.
  auto out_res = session.retrieve(res->out);
  if (!out_res.ok()) {
    std::cerr << "retrieve failed: " << out_res.status() << "\n";
    return 1;
  }
  const auto& out = *out_res;
  bool ok = res->kept == live_order.size() * B;
  for (std::size_t i = 0; i < live_order.size() && ok; ++i)
    ok = out[i * B].value == live_order[i] * B;  // original position preserved
  const std::uint64_t live_blocks = (res->kept + B - 1) / B;
  std::cout << "occupied prefix: " << live_blocks << " blocks; order preserved: "
            << (ok ? "yes" : "NO") << "\n";
  std::cout << "storage bill after defrag: " << live_blocks << "/" << n
            << " blocks\n\n";

  // Privacy: the provider cannot distinguish volumes with different live
  // layouts (same size).  The low-level harness runs the block-level
  // butterfly with a layout-dependent predicate on fresh clients built from
  // this session's parameters (same backend included).
  auto check = obliv::check_oblivious(
      session.params(), n * B, obliv::canonical_inputs(2),
      [](Client& c, const ExtArray& a) {
        core::tight_compact_blocks(c, a, [](std::uint64_t, const BlockBuf& blk) {
          return !blk[0].is_empty() && blk[0].key % 2 == 0;  // layout-dependent
        });
      });
  std::cout << "provider's view across different layouts: "
            << (check.oblivious ? "identical traces (oblivious)" : "LEAKS") << "\n";
  return ok && check.oblivious ? 0 : 1;
}
