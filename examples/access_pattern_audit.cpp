// Access-pattern audit: what exactly does the honest-but-curious server
// see, and why does a non-oblivious algorithm leak?
//
//   ./example_access_pattern_audit
//
// Side-by-side: a binary search (the classic leaky access pattern -- the
// probe sequence IS the value) vs an oblivious full scan, and a hash-table
// probe vs Theorem 4's IBLT insertion pass.  Prints the first trace events
// under two different inputs so the leak is visible to the naked eye.
#include <iomanip>
#include <iostream>

#include "core/sparse_compact.h"
#include "hash/hashing.h"
#include "extmem/client.h"
#include "obliv/trace_check.h"
#include "util/flags.h"

using namespace oem;

namespace {

void show(const std::string& name, const obliv::CheckResult& result) {
  std::cout << name << ": "
            << (result.oblivious ? "OBLIVIOUS (identical traces)" : "LEAKS") << "\n";
  for (const auto& run : result.runs) {
    std::cout << "   " << std::setw(10) << run.input_name << "  hash=" << std::hex
              << std::setw(16) << run.trace_hash << std::dec << "  len=" << run.trace_len
              << "\n";
  }
  if (!result.oblivious && !result.diagnosis.empty())
    std::cout << "   " << result.diagnosis << "\n";
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  flags.validate_or_die();
  // This example deliberately works below the oem::Session facade: it audits
  // raw access patterns, including ones a Session would never issue.
  ClientParams params;
  params.block_records = 4;
  params.cache_records = 64;
  const std::uint64_t N = 256;

  std::cout << "== access-pattern audit ==\n\n";

  // 1. Binary search for a data-dependent key: the probe path spells out
  // the value's position.
  auto binary_search = [](Client& c, const ExtArray& a) {
    BlockBuf blk;
    c.read_block(a, 0, blk);
    const Word needle = blk[0].key;  // search for the first element's key
    std::uint64_t lo = 0, hi = a.num_blocks();
    while (lo + 1 < hi) {
      const std::uint64_t mid = (lo + hi) / 2;
      c.read_block(a, mid, blk);
      if (blk[0].key <= needle) lo = mid;
      else hi = mid;
    }
  };
  show("binary search (leaky)",
       obliv::check_oblivious(params, N, obliv::canonical_inputs(3), binary_search, true));

  // 2. The oblivious alternative: scan everything, select privately.
  auto scan_select = [](Client& c, const ExtArray& a) {
    BlockBuf blk;
    Record best{};
    for (std::uint64_t i = 0; i < a.num_blocks(); ++i) {
      c.read_block(a, i, blk);
      for (const Record& r : blk)
        if (!r.is_empty() && (best.is_empty() || RecordLess{}(r, best))) best = r;
    }
  };
  show("full scan + private select (oblivious)",
       obliv::check_oblivious(params, N, obliv::canonical_inputs(3), scan_select));

  // 3. Hash-table insertion keyed by VALUES: collisions depend on the data
  // (the paper's own counter-example in §1).
  auto value_hash_probe = [](Client& c, const ExtArray& a) {
    ExtArray table = c.alloc_blocks(32, Client::Init::kEmpty);
    BlockBuf blk, slot;
    for (std::uint64_t i = 0; i < a.num_blocks(); ++i) {
      c.read_block(a, i, blk);
      const std::uint64_t h = hash::mix(blk[0].key, 7) % 32;  // value-keyed!
      c.read_block(table, h, slot);
      c.write_block(table, h, blk);
    }
  };
  show("hash table keyed by values (leaky)",
       obliv::check_oblivious(params, N, obliv::canonical_inputs(3), value_hash_probe));

  // 4. Theorem 4's trick: the IBLT is keyed by POSITION, so the identical
  // cell sequence is touched whatever the data holds.
  auto iblt_insert = [](Client& c, const ExtArray& a) {
    core::SparseCompactOptions opts;
    opts.cost_aware = false;
    core::sparse_compact_blocks(c, a, 12,
                                [](std::uint64_t, const BlockBuf& b) {
                                  return !b[0].is_empty() && b[0].key % 7 == 0;
                                },
                                5, opts);
  };
  show("IBLT compaction keyed by position (Theorem 4, oblivious)",
       obliv::check_oblivious(params, N, obliv::canonical_inputs(3), iblt_insert));

  std::cout << "moral: position-keyed, padded, or circuit-like access patterns are\n"
               "safe; value-keyed probes and early exits are not.\n";
  return 0;
}
