// Quickstart: outsource data to an untrusted server, sort it obliviously,
// and inspect what the server actually saw -- all through the oem::Session
// facade.
//
//   ./example_quickstart [--records=4096] [--B=8] [--M=512] [--seed=7]
//                        [--backend=mem|file|latency] [--shards=K] [--prefetch]
//
// Walks through the whole model: Alice's session with a small private cache,
// Bob's storage backend holding only ciphertext (RAM, a file, or a
// latency-modeled remote -- the choice is invisible to Bob's view), a
// data-oblivious sort (Theorem 21 pipeline with the paper's dense-regime
// rule), and the trace comparison that shows Bob learns nothing about the
// values.
#include <iostream>

#include "api/session.h"
#include "core/oblivious_sort.h"
#include "obliv/trace_check.h"
#include "util/flags.h"

using namespace oem;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::uint64_t N = flags.get_u64("records", 4096);
  const std::size_t B = static_cast<std::size_t>(flags.get_u64("B", 8));
  const std::uint64_t M = flags.get_u64("M", 512);
  const std::uint64_t seed = flags.get_u64("seed", 7);
  const std::string backend = flags.get("backend", "mem");
  const std::size_t shards = static_cast<std::size_t>(flags.get_u64("shards", 1));
  const bool prefetch = flags.get_bool("prefetch", false);
  flags.validate_or_die();

  std::cout << "== oblivem quickstart ==\n";
  std::cout << "N=" << N << " records, B=" << B << " records/block, M=" << M
            << " records of private cache (m=" << M / B << " blocks)\n\n";

  // 1. Alice opens a session; the storage behind it is "Bob's".
  Session::Builder builder;
  builder.block_records(B).cache_records(M).seed(seed);
  if (backend == "file") {
    builder.file_backed();
  } else if (backend == "latency") {
    LatencyProfile profile;
    profile.per_op_ns = 20000;  // 20us round trip
    profile.per_word_ns = 10;
    builder.latency(profile);
  } else if (backend != "mem") {
    std::cerr << "unknown --backend=" << backend << " (mem|file|latency)\n";
    return 2;
  }
  // The I/O engine: stripe blocks over independent stores and overlap
  // compute with storage I/O.  Bob's view is identical either way.
  if (shards > 1) builder.sharded(shards);
  if (prefetch) builder.async_prefetch();
  auto built = builder.build();
  if (!built.ok()) {
    std::cerr << "session setup failed: " << built.status() << "\n";
    return 1;
  }
  Session session = std::move(built).value();
  std::cout << "storage backend: " << session.backend_name() << "\n";

  // 2. Outsource some sensitive data (salaries, say).
  std::vector<Record> salaries(N);
  rng::Xoshiro g(42);
  for (std::uint64_t i = 0; i < N; ++i)
    salaries[i] = {30000 + g.below(200000), /*employee id=*/i};
  auto data = session.outsource(salaries);
  if (!data.ok()) {
    std::cerr << "outsource failed: " << data.status() << "\n";
    return 1;
  }

  // 3. What does Bob hold?  Only ciphertext.
  auto raw = session.raw_block(*data, 0);
  auto mine = session.retrieve(*data);
  if (!raw.ok() || !mine.ok()) {
    std::cerr << "storage read failed: " << (raw.ok() ? mine.status() : raw.status())
              << "\n";
    return 1;
  }
  std::cout << "Bob's view of block 0 (ciphertext words): ";
  for (int i = 0; i < 4; ++i) std::cout << std::hex << (*raw)[i] << " ";
  std::cout << std::dec << "...\n";
  std::cout << "Alice's view of record 0: salary=" << (*mine)[0].key
            << " id=" << (*mine)[0].value << "\n\n";

  // 4. Sort obliviously.
  session.reset_stats();
  auto report = session.sort(*data, seed);
  if (!report.ok()) {
    std::cerr << "oblivious sort failed: " << report.status() << "\n";
    return 1;
  }
  std::cout << "oblivious sort: ok, " << report->ios << " block I/Os ("
            << session.stats().reads << " reads, " << session.stats().writes
            << " writes, " << session.stats().total_ops()
            << " batched backend ops)\n";
  auto sorted_res = session.retrieve(*data);
  if (!sorted_res.ok()) {
    std::cerr << "retrieve failed: " << sorted_res.status() << "\n";
    return 1;
  }
  const auto& sorted = *sorted_res;
  std::cout << "smallest salaries: ";
  for (int i = 0; i < 5; ++i) std::cout << sorted[i].key << " ";
  std::cout << "\nlargest salary: " << sorted[N - 1].key << "\n\n";

  // 5. The privacy claim, demonstrated: run the same sort on wildly
  // different inputs -- Bob's trace is bit-identical.  (The harness spins up
  // a fresh client per input from the same parameters, including the same
  // storage backend.)
  std::cout << "obliviousness check (same seed, different data):\n";
  auto check = obliv::check_oblivious(
      session.params(), N, obliv::canonical_inputs(1),
      [&](Client& c, const ExtArray& a) { (void)core::oblivious_sort(c, a, seed); });
  for (const auto& run : check.runs) {
    std::cout << "  input " << run.input_name << ": trace hash " << std::hex
              << run.trace_hash << std::dec << " (" << run.trace_len << " accesses)\n";
  }
  std::cout << (check.oblivious ? "=> traces identical: Bob learns only N, M, B\n"
                                : "=> TRACES DIFFER: leak!\n");
  return check.oblivious && report.ok() ? 0 : 1;
}
