// Quickstart: outsource data to an untrusted server, sort it obliviously,
// and inspect what the server actually saw.
//
//   ./example_quickstart [--records=4096] [--B=8] [--M=512] [--seed=7]
//
// Walks through the whole model: Alice's client with a small private cache,
// Bob's block device holding only ciphertext, a data-oblivious sort
// (Theorem 21 pipeline with the paper's dense-regime rule), and the trace
// comparison that shows Bob learns nothing about the values.
#include <iostream>

#include "core/oblivious_sort.h"
#include "extmem/client.h"
#include "obliv/trace_check.h"
#include "util/flags.h"

using namespace oem;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::uint64_t N = flags.get_u64("records", 4096);
  const std::size_t B = static_cast<std::size_t>(flags.get_u64("B", 8));
  const std::uint64_t M = flags.get_u64("M", 512);
  const std::uint64_t seed = flags.get_u64("seed", 7);

  std::cout << "== oblivem quickstart ==\n";
  std::cout << "N=" << N << " records, B=" << B << " records/block, M=" << M
            << " records of private cache (m=" << M / B << " blocks)\n\n";

  // 1. Alice sets up her client; the device inside is "Bob's" storage.
  ClientParams params;
  params.block_records = B;
  params.cache_records = M;
  params.seed = seed;
  Client client(params);

  // 2. Outsource some sensitive data (salaries, say).
  ExtArray data = client.alloc(N, Client::Init::kUninit);
  std::vector<Record> salaries(N);
  rng::Xoshiro g(42);
  for (std::uint64_t i = 0; i < N; ++i)
    salaries[i] = {30000 + g.below(200000), /*employee id=*/i};
  client.poke(data, salaries);

  // 3. What does Bob hold?  Only ciphertext.
  auto raw = client.device().raw(data.device_block(0));
  std::cout << "Bob's view of block 0 (ciphertext words): ";
  for (int i = 0; i < 4; ++i) std::cout << std::hex << raw[i] << " ";
  std::cout << std::dec << "...\n";
  std::cout << "Alice's view of record 0: salary=" << client.peek(data)[0].key
            << " id=" << client.peek(data)[0].value << "\n\n";

  // 4. Sort obliviously.
  client.reset_stats();
  core::ObliviousSortResult res = core::oblivious_sort(client, data, seed);
  std::cout << "oblivious sort: " << (res.status.ok() ? "ok" : res.status.message())
            << ", " << client.stats().total() << " block I/Os ("
            << client.stats().reads << " reads, " << client.stats().writes
            << " writes)\n";
  auto sorted = client.peek(data);
  std::cout << "smallest salaries: ";
  for (int i = 0; i < 5; ++i) std::cout << sorted[i].key << " ";
  std::cout << "\nlargest salary: " << sorted[N - 1].key << "\n\n";

  // 5. The privacy claim, demonstrated: run the same sort on wildly
  // different inputs -- Bob's trace is bit-identical.
  std::cout << "obliviousness check (same seed, different data):\n";
  auto check = obliv::check_oblivious(
      params, N, obliv::canonical_inputs(1),
      [&](Client& c, const ExtArray& a) { (void)core::oblivious_sort(c, a, seed); });
  for (const auto& run : check.runs) {
    std::cout << "  input " << run.input_name << ": trace hash " << std::hex
              << run.trace_hash << std::dec << " (" << run.trace_len << " accesses)\n";
  }
  std::cout << (check.oblivious ? "=> traces identical: Bob learns only N, M, B\n"
                                : "=> TRACES DIFFER: leak!\n");
  return check.oblivious && res.status.ok() ? 0 : 1;
}
